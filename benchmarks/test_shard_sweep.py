"""Shard sweep: RSS-sharded scaling of the reproduction's NFs.

Not a figure of the paper — the paper's NAT is single-core — but the
sharded data path must (a) scale aggregate throughput with the worker
count, since disjoint port-range shards share no state and the steering
layer is the only added per-packet cost, (b) preserve the paper's
relative cost structure no-op < unverified < verified ≪ NetFilter at
every width, so the §6 comparisons stay valid on a multi-core box, and
(c) reproduce the single-worker burst-sweep numbers byte-identically at
``workers=1`` — sharding must be a strict superset of the PR 1 data
path, not a reinterpretation of it.
"""

from benchmarks.conftest import shard_packet_count, shard_worker_counts
from repro.eval.experiments import burst_size_sweep, shard_sweep
from repro.eval.reporting import render_shard_sweep
from repro.obs import merge_snapshots, snapshot_of_counters

BURST_SIZE = 32


def test_shard_sweep(benchmark, publish, publish_snapshot):
    widths = shard_worker_counts()
    packets = shard_packet_count()
    points = benchmark.pedantic(
        lambda: shard_sweep(
            worker_counts=widths,
            burst_size=BURST_SIZE,
            packet_count=packets,
        ),
        rounds=1,
        iterations=1,
    )
    publish("shard_sweep", render_shard_sweep(points))
    publish_snapshot(
        "shard_sweep",
        merge_snapshots(
            [
                snapshot_of_counters(
                    p.counters,
                    labels={"nf": p.nf, "workers": str(p.workers)},
                    prefix="shard_sweep_",
                    help_text="shard-sweep aggregated NF counters",
                )
                for p in points
            ]
        ),
    )

    mpps = {(p.nf, p.workers): p.aggregate_mpps for p in points}
    by_key = {(p.nf, p.workers): p for p in points}

    # (a) aggregate throughput of the verified NAT scales monotonically
    # with worker count through 4 workers, and near-linearly: 4 workers
    # deliver at least 3x the single-worker rate (steering overhead and
    # hash imbalance eat the rest).
    scaling_widths = [w for w in widths if w <= 4]
    verified = [mpps[("verified-nat", w)] for w in scaling_widths]
    for narrower, wider in zip(verified, verified[1:]):
        assert wider > narrower, verified
    if 1 in scaling_widths and 4 in scaling_widths:
        assert mpps[("verified-nat", 4)] > 3.0 * mpps[("verified-nat", 1)], verified

    # (b) the paper's ordering holds at every worker count.
    for w in widths:
        assert (
            mpps[("noop", w)]
            > mpps[("unverified-nat", w)]
            > mpps[("verified-nat", w)]
        ), w
        assert mpps[("linux-nat", w)] < mpps[("verified-nat", w)] / 2.5, w

    # Steering actually spreads load: at the widest configuration every
    # worker serves a non-trivial share (no dead queues, no hot queue
    # absorbing everything — the hash-aliasing failure mode).
    widest = widths[-1]
    steered = by_key[("verified-nat", widest)].steered
    assert len(steered) == widest
    total = sum(steered)
    for worker, count in enumerate(steered):
        assert count > total / (widest * 4), (worker, steered)

    # (c) workers=1 is byte-identical to the burst-mode data path: the
    # same per-packet occupancy the burst sweep measures at this burst
    # size and packet budget, exactly.
    burst_points = burst_size_sweep(
        burst_sizes=(BURST_SIZE,), packet_count=packets
    )
    burst_cost = {p.nf: p.per_packet_busy_ns for p in burst_points}
    for nf, cost in burst_cost.items():
        assert by_key[(nf, 1)].per_packet_busy_ns == cost, nf
