"""Ablation: the data-structure choices §6 discusses.

The paper attributes the verified NAT's residual cost to the libVig
flow table's open addressing (chain counters, more candidate slots per
lookup, worst on misses) versus the DPDK table's separate chaining.
This benchmark measures exactly that at the structure level, plus the
double-chain's O(expired) expiration — the property that keeps latency
flat as the table fills.
"""

from benchmarks.conftest import scale
from repro.libvig.double_chain import DoubleChain
from repro.libvig.double_map import DoubleMap
from repro.libvig.expirator import expire_items
from repro.libvig.hash_table import ChainingHashTable
from repro.libvig.map import Map


def test_probe_cost_vs_occupancy(benchmark, publish):
    """Open addressing vs chaining: probes per missed lookup by load."""
    capacity = 16_384 if scale() == "quick" else 65_536

    def run():
        rows = []
        for load_pct in (25, 50, 75, 88, 95):
            count = capacity * load_pct // 100
            open_map = Map(capacity)
            chain_table = ChainingHashTable(capacity)
            for i in range(count):
                open_map.put(("flow", i), i)
                chain_table.put(("flow", i), i)
            probes = {}
            for name, table in (("open", open_map), ("chain", chain_table)):
                table.stats.reset()
                misses = 2_000
                for i in range(misses):
                    table.get(("miss", i))
                probes[name] = table.stats.probes / misses
            rows.append((load_pct, probes["open"], probes["chain"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation — probes per missed lookup vs load factor",
        f"{'load %':>7s}  {'open addressing':>16s}  {'chaining':>9s}",
    ]
    for load_pct, open_probes, chain_probes in rows:
        lines.append(f"{load_pct:>7d}  {open_probes:>16.1f}  {chain_probes:>9.1f}")
    publish("ablation_probe_cost", "\n".join(lines))

    # Chaining stays ~flat; open addressing degrades with load — the
    # §6 explanation of the verified NAT's larger miss cost. Absolute
    # bounds: per-run hash randomization makes tiny per-load ratios
    # noisy (a low-load chaining miss can cost exactly 0 probes).
    assert rows[-1][2] < 3.0  # chaining stays cheap even at 95% load
    assert rows[-1][1] > max(3 * rows[0][1], 3.0)  # open addressing grows
    assert rows[-1][1] > 3 * rows[-1][2]  # and is much worse at high load


def test_expiration_cost_is_o_expired(benchmark, publish):
    """DoubleChain expiry touches only stale entries, not the table."""

    def run():
        rows = []
        for table_size in (1_000, 10_000, 50_000):
            dmap = DoubleMap(
                table_size + 16,
                key_a_of=lambda v: ("a", v),
                key_b_of=lambda v: ("b", v),
            )
            chain = DoubleChain(table_size + 16)
            for i in range(table_size):
                index = chain.allocate_new_index(i)
                dmap.put(index, i)
            # Expire exactly the 10 oldest.
            expired = expire_items(chain, dmap, 10)
            rows.append((table_size, expired))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation — entries touched by expiry (10 stale, any table size)"]
    for table_size, expired in rows:
        lines.append(f"  table={table_size:>6d}: expired={expired}")
    publish("ablation_expiry_cost", "\n".join(lines))
    assert all(expired == 10 for _size, expired in rows)


def test_hit_lookup_cost_near_constant(benchmark, publish):
    """Successful lookups stay cheap at any load for both structures."""
    capacity = 8_192

    def run():
        rows = []
        for load_pct in (25, 75, 88):
            count = capacity * load_pct // 100
            open_map = Map(capacity)
            for i in range(count):
                open_map.put(("flow", i), i)
            open_map.stats.reset()
            for i in range(0, count, max(1, count // 1_000)):
                open_map.get(("flow", i))
            rows.append((load_pct, open_map.stats.probes / max(1, open_map.stats.gets)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "Ablation — probes per hit (open addressing): " + ", ".join(
        f"{load}%: {probes:.1f}" for load, probes in rows
    )
    publish("ablation_hit_cost", text)
    assert rows[-1][1] < 12  # hits stay cheap even near the knee
