"""Fig. 12: average probe-flow latency vs. flow-table occupancy.

Paper's result: No-op 4.75 µs, Unverified NAT 5.03 µs, Verified NAT
5.13 µs; all flat as occupancy grows, with the verified NAT curving up
only at the last point (64k flows, table nearly full), to ~5.3 µs.
"""

from benchmarks.conftest import latency_occupancies, latency_settings
from repro.eval.experiments import latency_vs_occupancy
from repro.eval.ascii_chart import latency_chart
from repro.eval.reporting import render_fig12


def test_fig12_latency_vs_occupancy(benchmark, publish):
    settings = latency_settings()
    occupancies = latency_occupancies()

    points = benchmark.pedantic(
        lambda: latency_vs_occupancy(occupancies=occupancies, settings=settings),
        rounds=1,
        iterations=1,
    )
    publish("fig12_latency", render_fig12(points) + "\n\n" + latency_chart(points))

    by_nf = {}
    for p in points:
        by_nf.setdefault(p.nf, {})[p.background_flows] = p.avg_us

    low = occupancies[0]
    # Headline averages at low occupancy (paper: 4.75 / 5.03 / 5.13).
    assert abs(by_nf["noop"][low] - 4.75) < 0.3
    assert abs(by_nf["unverified-nat"][low] - 5.03) < 0.3
    assert abs(by_nf["verified-nat"][low] - 5.13) < 0.3
    # Ordering holds at every occupancy.
    for occ in occupancies:
        assert by_nf["noop"][occ] < by_nf["unverified-nat"][occ] < by_nf["verified-nat"][occ]
    # Flatness except the verified NAT's final upturn.
    for nf in ("noop", "unverified-nat"):
        series = [by_nf[nf][occ] for occ in occupancies]
        assert max(series) - min(series) < 0.2
    verified = [by_nf["verified-nat"][occ] for occ in occupancies]
    assert max(verified[:-1]) - min(verified[:-1]) < 0.3  # flat until last
    assert verified[-1] > verified[0]  # the upturn at the full table
    assert verified[-1] - verified[0] < 1.0  # but a mild one
