"""Availability sweep: kill-and-promote under replication lag.

Not a figure of the paper — the paper's NAT restarts from empty state —
but the resilience subsystem must honor three contracts while buying
real availability:

(a) **zero loss when synchronous**: at replication lag 0 the promoted
    standby recovers every established flow — killing a worker loses
    packets (queued + blackout) but never a flow;
(b) **asynchrony has a price, and only that price**: flows lost grow
    (weakly) with the lag and never exceed the deltas the channel cut
    destroyed, and every flow the standby did recover keeps translating
    after promotion (the post-recovery probe loses nothing beyond the
    replication loss);
(c) **bounded blackout**: the modeled recovery window stays within the
    loss budget at every lag.

The measured numbers (flow/packet loss ledgers, recovery windows,
availability through the kill) are published to
``benchmarks/results/BENCH_failover.json`` alongside the rendered table.
"""

import json

from benchmarks.conftest import (
    RESULTS_DIR,
    failover_flow_count,
    failover_lags,
)
from repro.eval.experiments import (
    FailoverBudget,
    failover_breaches,
    failover_sweep,
)
from repro.eval.reporting import render_failover
from repro.obs import merge_snapshots, snapshot_of_counters

REPLICABLE_NFS = ("unverified-nat", "verified-nat")


def _point_snapshot(point):
    """One sweep point's loss ledger in the shared snapshot schema."""
    return snapshot_of_counters(
        {
            "failover_flows_at_kill": point.flows_at_kill,
            "failover_flows_recovered": point.flows_recovered,
            "failover_flows_lost": point.flows_lost,
            "failover_deltas_lost": point.deltas_lost,
            "failover_packets_lost_queue": point.packets_lost_queue,
            "failover_packets_lost_blackout": point.packets_lost_blackout,
        },
        labels={"nf": point.nf, "lag": str(point.lag)},
        help_text="failover-sweep loss ledger",
    )


def _bench_record(point):
    return {
        "nf": point.nf,
        "lag": point.lag,
        "flow_count": point.flow_count,
        "workers": point.workers,
        "flows_at_kill": point.flows_at_kill,
        "flows_recovered": point.flows_recovered,
        "flows_lost": point.flows_lost,
        "deltas_lost": point.deltas_lost,
        "recovery_us": point.recovery_us,
        "packets_lost_queue": point.packets_lost_queue,
        "packets_lost_blackout": point.packets_lost_blackout,
        "steady_offered": point.steady_offered,
        "steady_delivered": point.steady_delivered,
        "availability": round(point.availability, 4),
        "probe_offered": point.probe_offered,
        "probe_delivered": point.probe_delivered,
        "metrics": _point_snapshot(point),
    }


def test_failover_sweep(benchmark, publish, publish_snapshot):
    lags = failover_lags()
    points = benchmark.pedantic(
        lambda: failover_sweep(lags=lags, flow_count=failover_flow_count()),
        rounds=1,
        iterations=1,
    )
    publish("failover_sweep", render_failover(points))
    publish_snapshot(
        "failover_sweep", merge_snapshots([_point_snapshot(p) for p in points])
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_failover.json").write_text(
        json.dumps([_bench_record(p) for p in points], indent=2) + "\n"
    )

    by_key = {(p.nf, p.lag): p for p in points}
    assert set(by_key) == {(nf, lag) for nf in REPLICABLE_NFS for lag in lags}

    for point in points:
        # A failover actually happened, and it was not free.
        assert point.flows_at_kill > 0, (point.nf, point.lag)
        assert point.recovery_us > 0
        assert point.availability < 1.0, (point.nf, point.lag)
        # The channel cut destroyed exactly its in-flight window.
        assert point.deltas_lost == point.lag, (point.nf, point.lag)
        # Flow loss is bounded by what the channel destroyed.
        assert point.flows_lost <= point.deltas_lost
        # (b) recovered flows keep translating: the probe loses nothing
        # beyond what replication already lost.
        assert point.probe_lost <= point.flows_lost, (
            point.nf,
            point.lag,
            point.probe_lost,
            point.flows_lost,
        )

    for nf in REPLICABLE_NFS:
        # (a) The synchronous anchor: zero established-flow loss.
        assert by_key[(nf, 0)].flows_lost == 0, nf
        # (b) Loss grows (weakly) with the lag.
        losses = [by_key[(nf, lag)].flows_lost for lag in sorted(lags)]
        assert losses == sorted(losses), (nf, losses)
        if max(lags) > 0:
            assert by_key[(nf, max(lags))].flows_lost > 0, (
                f"{nf}: an asynchronous channel (lag {max(lags)}) "
                "lost no flows — the sweep is not exercising the cut"
            )

    # (c) The loss budget the CLI gate enforces holds here too.
    assert failover_breaches(points, FailoverBudget()) == []

    # A promoted standby with the microflow cache enabled must not
    # serve its first packets cold: promotion rebuilds both directions
    # of every recovered flow into the cache.
    warm_points = failover_sweep(
        lags=(0,), flow_count=min(64, failover_flow_count()), fastpath=True
    )
    for point in warm_points:
        assert point.flows_recovered > 0, point.nf
        assert point.fastpath_warmed == 2 * point.flows_recovered, (
            point.nf,
            point.fastpath_warmed,
            point.flows_recovered,
        )
