"""Process-runtime scaling sweep: real cores behind the same semantics.

Not a figure of the paper — the paper's NAT runs one core per NIC queue
natively — but the reproduction's claim is the same one DPDK deployments
make: scaling out must not change what the NF computes. Two contracts:

(a) **byte-identity**: on the identical schedule, every worker process
    emits the exact TX stream (and counters) the deterministic oracle's
    same-numbered worker emits, at every width — on *both* transports
    (``pipe`` and ``shm``);
(b) **core-aware scaling**: the warmed replay rate grows with worker
    processes up to ``min(workers, cores)`` at ≥0.5 efficiency — on the
    ≥4-core CI box, 4 workers must clear 2x the 1-worker rate; on a
    1-core box only the single-core overhead floor applies.

The transport ablation rides the same sweep: every point embeds the
per-burst ``encode_ns``/``copy_ns``/``ring_wait_ns`` totals, and on a
single core — where throughput can't separate the transports — the
shm transport must spend strictly fewer encode+copy nanoseconds per
packet than the pipe transport at every matching (nf, workers) cell.
On multi-core runners ``compare_bench.py`` instead gates the 4-worker
shm rate at ≥1.5x the 4-worker pipe rate.

The measured rates (with the core count and transport that
contextualize them) are published to
``benchmarks/results/BENCH_procs.json`` and budget-gated by
``compare_bench.py``.
"""

import json

from benchmarks.conftest import (
    RESULTS_DIR,
    procs_packet_count,
    procs_worker_counts,
)
from repro.eval.experiments import (
    ProcsBudget,
    procs_nf_factories,
    procs_scaling_breaches,
    procs_sweep,
)
from repro.eval.reporting import render_procs_sweep
from repro.net.procrun import TRANSPORTS
from repro.obs import merge_snapshots, snapshot_of_counters

PROCS_NFS = tuple(procs_nf_factories())


def _point_snapshot(point):
    """One sweep point in the shared snapshot schema."""
    return snapshot_of_counters(
        {
            "procs_replay_pps": int(point.replay_pps),
            "procs_packets": point.packets,
            "procs_identical": int(point.identical),
            "proc_encode_ns": point.transport_ns.get("encode_ns", 0),
            "proc_copy_ns": point.transport_ns.get("copy_ns", 0),
            "proc_ring_wait_ns": point.transport_ns.get("ring_wait_ns", 0),
        },
        labels={
            "nf": point.nf,
            "workers": str(point.workers),
            "transport": point.transport,
        },
        help_text="process-runtime scaling sweep",
    )


def _bench_record(point):
    return {
        "nf": point.nf,
        "workers": point.workers,
        "transport": point.transport,
        "burst_size": point.burst_size,
        "packets": point.packets,
        "cores": point.cores,
        "replay_pps": round(point.replay_pps, 1),
        "speedup_vs_1": round(point.speedup_vs_1, 3),
        "identical": point.identical,
        "transport_ns": dict(point.transport_ns),
        "metrics": _point_snapshot(point),
    }


def test_procs_sweep(benchmark, publish, publish_snapshot):
    widths = procs_worker_counts()
    points = benchmark.pedantic(
        lambda: procs_sweep(
            worker_counts=widths, packet_count=procs_packet_count()
        ),
        rounds=1,
        iterations=1,
    )
    publish("procs_sweep", render_procs_sweep(points))
    publish_snapshot(
        "procs_sweep", merge_snapshots([_point_snapshot(p) for p in points])
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_procs.json").write_text(
        json.dumps([_bench_record(p) for p in points], indent=2) + "\n"
    )

    by_key = {(p.nf, p.workers, p.transport): p for p in points}
    assert set(by_key) == {
        (nf, w, t) for nf in PROCS_NFS for w in widths for t in TRANSPORTS
    }

    for point in points:
        # (a) The whole point: process mode changes the wall clock,
        # never the bytes — on either transport.
        assert point.identical, (
            f"{point.nf} @ {point.workers} workers / {point.transport}: "
            "process TX stream diverged from the deterministic oracle"
        )
        assert point.replay_pps > 0, (point.nf, point.workers, point.transport)
        # The NF actually processed the schedule in every worker.
        assert sum(point.counters.values()) > 0, (point.nf, point.workers)
        # The ablation counters were actually collected.
        assert point.transport_ns.get("copy_ns", 0) > 0, (
            point.nf,
            point.workers,
            point.transport,
        )

    # (b) Core-aware scaling within budget — the same gate
    # compare_bench applies to the committed baseline.
    assert procs_scaling_breaches(points, ProcsBudget()) == []

    # (c) Transport ablation on a single core: throughput can't tell
    # the transports apart when everything shares one CPU, but the
    # byte-movement cost can — shm must spend strictly fewer
    # encode+copy ns than pipe at every matching cell. (Multi-core
    # runners gate on throughput instead, in compare_bench.)
    if points and points[0].cores == 1:
        for point in points:
            if point.transport != "shm":
                continue
            pipe = by_key[(point.nf, point.workers, "pipe")]
            shm_cost = point.transport_ns.get(
                "encode_ns", 0
            ) + point.transport_ns.get("copy_ns", 0)
            pipe_cost = pipe.transport_ns.get(
                "encode_ns", 0
            ) + pipe.transport_ns.get("copy_ns", 0)
            assert shm_cost < pipe_cost, (
                f"{point.nf} @ {point.workers} workers: shm spent "
                f"{shm_cost} encode+copy ns vs pipe's {pipe_cost}; "
                "the zero-copy transport must move bytes cheaper"
            )
