"""§5 verification statistics: paths, traces, proof timing.

Paper's numbers: 108 execution paths through the stateless code, 431
traces (paths plus prefixes), exhaustive symbolic execution in under a
minute, trace validation in 38 single-core minutes. Our stateless NF is
leaner (no batching, single rx per iteration), so the counts are
smaller; the structural claims — ESE terminates in seconds, traces
exceed paths, all five properties discharge — are what this benchmark
checks and reports.
"""

from repro.eval.reporting import render_verification
from repro.eval.verification_stats import collect


def test_verification_statistics(benchmark, publish):
    stats = benchmark.pedantic(collect, rounds=1, iterations=1)
    publish("verification_stats", render_verification(stats))

    assert stats.verified
    assert stats.paths >= 12
    assert stats.traces > stats.paths
    assert stats.explore_seconds < 60  # paper: ESE < 1 minute
    assert stats.validate_seconds < 600
    assert stats.obligations > 100
