"""Benchmark-regression gate: diff fresh BENCH_*.json against baselines.

Usage::

    python benchmarks/compare_bench.py --baseline DIR --fresh DIR \
        [--tolerance 0.25] [--select BENCH_foo.json,BENCH_bar.json]

``--select`` restricts the gate to the named ``BENCH_*.json`` files —
the CI benchmark matrix runs one sweep per job, so each job gates only
the file(s) its sweep produced. The budget-gated "baseline must exist"
rule then applies only to selected files; an unselected baseline is
someone else's job. Without ``--select`` every baseline is gated (the
local / full-run behavior).

Both directories hold ``BENCH_*.json`` files as written by the sweep
benchmarks (a list of per-point records). For every baseline file with
a fresh counterpart, records are matched by ``(nf, flow_count)`` — or
by ``(nf, lag)`` for records carrying a ``lag`` field (the failover
availability sweep), or by ``(nf, workers, transport)`` for records
carrying a ``workers`` field without a ``flow_count`` (the
process-runtime scaling sweep) — and the gate fails (exit 1) when any
matched point:

- regresses more than ``tolerance`` (default 25%) in replay throughput
  (``replay_pps_off``, ``replay_pps_on`` or ``replay_pps``) — skipped
  when the two runs report different ``cores`` counts, since absolute
  rates are not comparable across machine shapes,
- regresses more than ``tolerance`` in a lower-is-better recovery
  metric (``recovery_us``), or loses flows a synchronous baseline
  kept (``flows_lost`` grew from zero), or
- lost the differential byte-identity (``identical`` went false).

Independently of the baseline, every fresh file must preserve the
paper's NF cost ordering — noop < unverified-nat < verified-nat in
modeled per-packet busy time — at every flow count it covers.

Points present only in the baseline (e.g. the CI smoke scale sweeps
fewer flow counts) are reported but do not fail the gate; a fresh file
sharing *no* point with its baseline does, since the gate would
otherwise pass vacuously.

Budget-gating sweeps are stricter. The failover availability sweep and
the cgnat memory-flatness sweep exist to *bound* a number (recovery
budget, state growth), so for their files a baseline-only point — or a
missing baseline file altogether — is a hard error: silently dropping
points (say, by deleting the committed baseline) must not green CI.

``BENCH_procs.json`` carries its own fresh-file invariants, all
machine-shape-aware: every point must keep oracle byte-identity, and
each multi-worker point must reach ``PROCS_MIN_EFFICIENCY`` of the
core-aware ideal — ``min(workers, cores)`` times the matching
transport's 1-worker rate — so the "4 workers ≥ 2x" claim gates
exactly on boxes with ≥4 cores while a 1-core runner only enforces
the overhead floor. The transports are also gated against each other:
on a runner with ≥4 cores the widest shm point must reach
``PROCS_SHM_SPEEDUP`` (1.5x) the same-width pipe rate — the
shared-memory data plane's acceptance claim — while a 1-core runner
proves the same ablation via the in-file ``transport_ns`` byte-cost
counters (asserted by the sweep benchmark itself, where the pps
comparison would be noise).

``BENCH_cgnat.json`` additionally carries its own fresh-file invariant:
the stateless ``det-nat`` must report zero state entries and a flat
checkpoint size at every flow count, while the stateful NATs it is
benchmarked against must show state growing with flow count — if they
do not, the sweep is not measuring what it claims to.

``BENCH_fastpath.json`` carries the compiled-closure acceptance
invariants on its fresh results (machine-independent ratios, so they
gate on any runner shape): every raw-capable point keeps raw/compiled
byte-identity; the verified NAT's compiled closures reach
``COMPILED_MIN_SPEEDUP`` (1.3x) over the replay cache at some 90%+
hit-rate point; and the no-op forwarder's compiled path never loses to
running with no fast path at all.

``BENCH_chain.json`` (records keyed by ``(nf, scenario)``) gates the
operational scenario suite: every fresh record must report
``sla_ok`` — the measured availability, disruption window, mapping
survival and probe loss all inside their declared budgets; the warm
upgrade and the stage promotion must not cost a single NAT mapping
(``flows_lost == 0``) and their post-disruption probes must be
lossless; and the chaos soak's fault ledger must show the storm
actually fired (including the reordering link). Against the baseline,
``disruption_us`` rides the lower-is-better recovery gate and
``flows_lost`` the 0 -> >0 transition gate, like the failover sweep.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Tuple

ORDERED_NFS = ("noop", "unverified-nat", "verified-nat")

THROUGHPUT_FIELDS = (
    "replay_pps_off",
    "replay_pps_on",
    "replay_pps",
    "raw_pps_off",
    "raw_pps_cache",
    "raw_pps_compiled",
)

#: Lower is better: a fresh value *above* baseline is the regression.
#: (``flows_lost`` is gated separately — nonzero losses scale with the
#: workload, so only its 0 -> >0 transition fails the gate.)
RECOVERY_FIELDS = ("recovery_us", "disruption_us")

#: Sweeps that gate a budget rather than track a trend: every baseline
#: point must be matched, and the baseline file itself must exist.
BUDGET_GATED = (
    "BENCH_failover.json",
    "BENCH_cgnat.json",
    "BENCH_procs.json",
    "BENCH_chain.json",
)

#: Fraction of the core-aware ideal (min(workers, cores) x the
#: 1-worker rate) every multi-worker procs point must reach; on a
#: single core the ideal is 1x and only the overhead floor applies.
PROCS_MIN_EFFICIENCY = 0.5
#: Kept loose deliberately: 4 workers time-sharing one core see tens
#: of percent of scheduler jitter run to run.
PROCS_SINGLE_CORE_FLOOR = 0.25

#: On a multi-core runner, the widest shm sweep point must beat the
#: same-width pipe point by this factor — the shared-memory data
#: plane's whole reason to exist. Not applied on 1-core runners, where
#: the transports time-share a CPU and pps separation is noise (the
#: sweep benchmark gates the transport_ns byte costs there instead).
PROCS_SHM_SPEEDUP = 1.5

#: Allowed relative spread of a "flat" series (det-nat checkpoint
#: bytes): max may exceed min by at most this fraction.
FLATNESS_SLACK = 0.10

#: Compiled closures must beat the replay cache by this factor on the
#: verified NAT's hottest raw-path point — the compiled fast path's
#: acceptance claim. A wall-clock ratio on one machine, so it gates on
#: every runner shape.
COMPILED_MIN_SPEEDUP = 1.3


def _key_of(record: Dict) -> Tuple:
    """Records with a ``scenario`` field (chain suite) key on it;
    records with a ``lag`` field (failover sweep) key on it; records
    with ``workers`` but no ``flow_count`` (procs sweep) key on the
    worker count plus transport; the throughput sweeps key on
    ``flow_count``."""
    if "scenario" in record:
        return (record["nf"], record["scenario"])
    if "lag" in record:
        return (record["nf"], record["lag"])
    if "workers" in record and "flow_count" not in record:
        # ``transport`` defaults to pipe for pre-shm baselines so old
        # and new files still share keys on the pipe rows.
        return (
            record["nf"],
            record["workers"],
            record.get("transport", "pipe"),
        )
    return (record["nf"], record["flow_count"])


def _load(path: pathlib.Path) -> Dict[Tuple, Dict]:
    records = json.loads(path.read_text())
    return {_key_of(r): r for r in records}


def compare_file(
    baseline_path: pathlib.Path,
    fresh_path: pathlib.Path,
    tolerance: float,
) -> List[str]:
    """Compare one benchmark file pair; returns failure messages."""
    failures: List[str] = []
    baseline = _load(baseline_path)
    fresh = _load(fresh_path)
    name = fresh_path.name

    common = sorted(set(baseline) & set(fresh))
    if not common:
        return [f"{name}: no common (nf, flow_count) points with baseline"]
    for key in sorted(set(baseline) - set(fresh)):
        if name in BUDGET_GATED:
            # A budget gate with a missing point is no gate at all.
            failures.append(
                f"{name}: baseline point {key} missing from fresh results "
                f"(budget-gating sweep; every baseline point must be matched)"
            )
        else:
            print(f"  {name}: baseline-only point {key} (skipped)")

    for key in common:
        base, new = baseline[key], fresh[key]
        if base.get("identical", True) and not new.get("identical", True):
            failures.append(f"{name}: {key} lost differential byte-identity")
        base_cores, new_cores = base.get("cores"), new.get("cores")
        cores_differ = (
            base_cores is not None
            and new_cores is not None
            and base_cores != new_cores
        )
        for field in THROUGHPUT_FIELDS:
            old_value = base.get(field)
            new_value = new.get(field)
            if not old_value or new_value is None:
                continue
            if cores_differ:
                # Absolute rates measured on different machine shapes
                # say nothing about regressions; the per-file scaling
                # invariants still gate the fresh results.
                print(
                    f"  {name}: {key[0]}@{key[1]} {field} skipped "
                    f"(baseline on {base_cores} core(s), "
                    f"fresh on {new_cores})"
                )
                continue
            change = (new_value - old_value) / old_value
            marker = ""
            if change < -tolerance:
                failures.append(
                    f"{name}: {key} {field} regressed "
                    f"{-change:.1%} (> {tolerance:.0%} tolerance): "
                    f"{old_value:.0f} -> {new_value:.0f}"
                )
                marker = "  << REGRESSION"
            print(
                f"  {name}: {key[0]}@{key[1]} {field} "
                f"{old_value:.0f} -> {new_value:.0f} ({change:+.1%}){marker}"
            )
        for field in RECOVERY_FIELDS:
            old_value = new_value = None
            if field in base and field in new:
                old_value, new_value = base[field], new[field]
            if old_value is None or new_value is None:
                continue
            if old_value == 0:
                # A synchronous baseline lost nothing; any fresh loss
                # is a correctness regression, not a percentage.
                if new_value > 0:
                    failures.append(
                        f"{name}: {key} {field} regressed from 0 "
                        f"to {new_value}"
                    )
                continue
            change = (new_value - old_value) / old_value
            marker = ""
            if change > tolerance:
                failures.append(
                    f"{name}: {key} {field} regressed "
                    f"{change:.1%} (> {tolerance:.0%} tolerance): "
                    f"{old_value:.0f} -> {new_value:.0f}"
                )
                marker = "  << REGRESSION"
            print(
                f"  {name}: {key[0]}@{key[1]} {field} "
                f"{old_value:.0f} -> {new_value:.0f} ({change:+.1%}){marker}"
            )
        if "flows_lost" in base and "flows_lost" in new:
            # Nonzero flow loss scales with the workload, so only the
            # 0 -> >0 transition (a lossless point starting to lose
            # flows) gates, not a percentage.
            if base["flows_lost"] == 0 and new["flows_lost"] > 0:
                failures.append(
                    f"{name}: {key} flows_lost regressed from 0 "
                    f"to {new['flows_lost']}"
                )

    # NF ordering within the fresh results: modeled per-packet cost must
    # keep the paper's structure at every flow count the file covers.
    by_flow: Dict[int, Dict[str, float]] = {}
    for key, record in fresh.items():
        busy = record.get("modeled_busy_ns_off")
        if busy is not None:
            by_flow.setdefault(key[1], {})[key[0]] = busy
    for flow_count, busy_by_nf in sorted(by_flow.items()):
        present = [nf for nf in ORDERED_NFS if nf in busy_by_nf]
        costs = [busy_by_nf[nf] for nf in present]
        if costs != sorted(costs):
            failures.append(
                f"{name}: NF cost ordering lost at {flow_count} flows: "
                + ", ".join(f"{nf}={busy_by_nf[nf]:.0f}ns" for nf in present)
            )
    if name == "BENCH_cgnat.json":
        failures.extend(_cgnat_invariants(name, fresh))
    if name == "BENCH_procs.json":
        failures.extend(_procs_invariants(name, fresh))
    if name == "BENCH_fastpath.json":
        failures.extend(_fastpath_invariants(name, fresh))
    if name == "BENCH_chain.json":
        failures.extend(_chain_invariants(name, fresh))
    return failures


def _chain_invariants(name: str, fresh: Dict[Tuple, Dict]) -> List[str]:
    """Operational-suite acceptance on the fresh chain results.

    SLA verdicts are measured against budgets declared in the same
    record, so they gate on any runner shape. The chaos soak must also
    prove the storm fired: a fault plan that never applied a fault
    would trivially "pass" its SLA without soaking anything.
    """
    failures: List[str] = []
    for key, record in sorted(fresh.items()):
        scenario = record.get("scenario", "?")
        if not record.get("sla_ok", False):
            failures.append(
                f"{name}: {key} breached its declared SLA "
                f"(availability {record.get('availability')}, "
                f"disruption {record.get('disruption_us')}us, "
                f"flows_lost {record.get('flows_lost')}, "
                f"probe_lost {record.get('probe_lost')})"
            )
        if scenario in ("warm-upgrade", "promote-stage"):
            # Packets may die during the control action; connections
            # may not, and the recovered chain must serve the probes.
            if record.get("flows_lost", 0) != 0:
                failures.append(
                    f"{name}: {key} lost {record['flows_lost']} NAT "
                    f"mapping(s); upgrades/promotions must carry state"
                )
            if record.get("probe_lost", 0) != 0:
                failures.append(
                    f"{name}: {key} dropped {record['probe_lost']} "
                    f"post-disruption probe packet(s)"
                )
        if scenario == "chaos-soak":
            applied = record.get("details", {}).get("faults_applied", {})
            if sum(applied.values()) == 0:
                failures.append(
                    f"{name}: {key} applied no faults; the soak "
                    f"measured an undisturbed chain"
                )
            elif applied.get("reorder", 0) == 0:
                failures.append(
                    f"{name}: {key} never exercised the reordering "
                    f"link (faults applied: {applied})"
                )
    return failures


def _fastpath_invariants(
    name: str, fresh: Dict[Tuple, Dict]
) -> List[str]:
    """Compiled-closure acceptance on the fresh fastpath results.

    Ratios, not absolute rates, so they are checked regardless of the
    baseline's machine shape. Records from before the compiled axis
    (no ``supports_raw`` field) are exempt — the gate cannot invent
    measurements a sweep never took.
    """
    failures: List[str] = []
    raw_points = [r for r in fresh.values() if r.get("supports_raw")]
    if not any("supports_raw" in r for r in fresh.values()):
        return failures
    if not raw_points:
        return [
            f"{name}: no record exercised the raw byte path; the "
            f"compiled-closure axis is not being measured"
        ]
    for record in raw_points:
        if not record.get("raw_identical", True):
            failures.append(
                f"{name}: ({record['nf']}, {record['flow_count']}) lost "
                f"raw/compiled byte-identity"
            )
    hot = [
        r
        for r in raw_points
        if r["nf"] == "verified-nat" and r.get("hit_rate", 0.0) >= 0.9
    ]
    if not hot:
        failures.append(
            f"{name}: no raw-capable verified-nat point at a 90%+ hit "
            f"rate; the compiled speedup claim has nowhere to gate"
        )
    elif (
        max(r.get("compiled_speedup_over_cache", 0.0) for r in hot)
        < COMPILED_MIN_SPEEDUP
    ):
        failures.append(
            f"{name}: verified-nat compiled closures below "
            f"{COMPILED_MIN_SPEEDUP}x the replay cache at every hot "
            f"point: "
            + ", ".join(
                f"{r['flow_count']} flows -> "
                f"{r.get('compiled_speedup_over_cache', 0.0):.2f}x"
                for r in sorted(hot, key=lambda r: r["flow_count"])
            )
        )
    for record in raw_points:
        if record["nf"] != "noop":
            continue
        ratio = record.get("compiled_speedup_over_off", 0.0)
        if ratio < 1.0:
            failures.append(
                f"{name}: noop compiled path {ratio:.2f}x the "
                f"no-fast-path baseline at {record['flow_count']} flows; "
                f"the compiled fast path may not cost more than it saves"
            )
    return failures


def _cgnat_invariants(name: str, fresh: Dict[Tuple[str, int], Dict]) -> List[str]:
    """Memory-flatness invariant of the cgnat sweep's fresh results.

    The stateless NAT's whole claim is that its footprint does not move
    with flow count; the stateful NATs are in the sweep precisely to
    show theirs does. Checked here (not only in the benchmark) so a
    sweep whose numbers stop meaning anything fails the gate even if
    every point matched its baseline.
    """
    failures: List[str] = []
    by_nf: Dict[str, List[Tuple[int, Dict]]] = {}
    for (nf, flow_count), record in fresh.items():
        by_nf.setdefault(nf, []).append((flow_count, record))
    for nf, points in sorted(by_nf.items()):
        points.sort()
        entries = [r.get("state_entries") for _, r in points]
        ckpt = [r.get("checkpoint_bytes") for _, r in points]
        if any(v is None for v in entries) or any(v is None for v in ckpt):
            failures.append(
                f"{name}: {nf} records missing state_entries/checkpoint_bytes"
            )
            continue
        if nf == "det-nat":
            if any(entries):
                failures.append(
                    f"{name}: det-nat reports state entries {entries}; "
                    f"the stateless NAT must hold zero flow state"
                )
            low, high = min(ckpt), max(ckpt)
            if high > max(low, 1) * (1 + FLATNESS_SLACK):
                failures.append(
                    f"{name}: det-nat checkpoint size not flat across flow "
                    f"counts: {ckpt} bytes (>{FLATNESS_SLACK:.0%} spread)"
                )
        elif len(points) > 1:
            if not all(a < b for a, b in zip(entries, entries[1:])):
                failures.append(
                    f"{name}: {nf} state entries {entries} do not grow with "
                    f"flow count; the stateful contrast is not being measured"
                )
    return failures


def _procs_invariants(name: str, fresh: Dict[Tuple, Dict]) -> List[str]:
    """Byte-identity, core-aware scaling and transport ablation.

    Checked against the fresh file alone (the committed baseline may
    come from a differently-shaped machine): every point must match the
    deterministic oracle byte for byte, and each multi-worker point
    must reach ``PROCS_MIN_EFFICIENCY`` of ``min(workers, cores)``
    times its (NF, transport)'s 1-worker rate — on a >=4-core runner
    that is the "4 workers >= 2x" acceptance claim; a single core only
    enforces ``PROCS_SINGLE_CORE_FLOOR`` (transport overhead must not
    eat the rate). On >=4-core runners the widest shm point must also
    reach ``PROCS_SHM_SPEEDUP`` times the same-width pipe point.
    """
    failures: List[str] = []
    by_row: Dict[Tuple[str, str], List[Tuple[int, Dict]]] = {}
    for key, record in fresh.items():
        nf, workers = key[0], key[1]
        transport = key[2] if len(key) > 2 else "pipe"
        by_row.setdefault((nf, transport), []).append((workers, record))
    for (nf, transport), points in sorted(by_row.items()):
        points.sort(key=lambda item: item[0])
        for workers, record in points:
            if not record.get("identical", False):
                failures.append(
                    f"{name}: {nf}@{workers} workers/{transport} lost "
                    f"byte-identity with the deterministic oracle"
                )
        anchor = dict(points).get(1)
        if anchor is None or not anchor.get("replay_pps"):
            failures.append(
                f"{name}: {nf}/{transport} is missing its 1-worker anchor "
                f"point; the scaling gate has nothing to scale from"
            )
            continue
        base_pps = anchor["replay_pps"]
        for workers, record in points:
            if workers == 1:
                continue
            pps = record.get("replay_pps") or 0.0
            cores = record.get("cores") or 1
            ideal = min(workers, cores)
            if ideal > 1:
                required = PROCS_MIN_EFFICIENCY * ideal * base_pps
                shape = (
                    f"{PROCS_MIN_EFFICIENCY:.2f} x {ideal}x ideal "
                    f"on {cores} core(s)"
                )
            else:
                required = PROCS_SINGLE_CORE_FLOOR * base_pps
                shape = f"single-core floor {PROCS_SINGLE_CORE_FLOOR:.2f}"
            if pps < required:
                failures.append(
                    f"{name}: {nf}@{workers} workers/{transport} replay_pps "
                    f"{pps:.0f} below required {required:.0f} ({shape})"
                )
    failures.extend(_procs_transport_ablation(name, by_row))
    return failures


def _procs_transport_ablation(
    name: str, by_row: Dict[Tuple[str, str], List[Tuple[int, Dict]]]
) -> List[str]:
    """Gate shm against pipe at the widest width, where cores >= 4.

    The shared-memory transport's acceptance claim is a >=
    ``PROCS_SHM_SPEEDUP`` replay-rate win over the pipe transport at
    the widest multi-core width. Files from 1-core runners (or with
    only one transport) are exempt here — the sweep benchmark gates the
    per-byte ``transport_ns`` costs in that regime instead.
    """
    failures: List[str] = []
    nfs = {nf for nf, _ in by_row}
    for nf in sorted(nfs):
        pipe = dict(by_row.get((nf, "pipe"), []))
        shm = dict(by_row.get((nf, "shm"), []))
        shared_widths = [w for w in pipe if w in shm and w > 1]
        if not shared_widths:
            continue
        widest = max(shared_widths)
        pipe_rec, shm_rec = pipe[widest], shm[widest]
        cores = min(pipe_rec.get("cores") or 1, shm_rec.get("cores") or 1)
        if cores < 4:
            continue
        pipe_pps = pipe_rec.get("replay_pps") or 0.0
        shm_pps = shm_rec.get("replay_pps") or 0.0
        if shm_pps < PROCS_SHM_SPEEDUP * pipe_pps:
            failures.append(
                f"{name}: {nf}@{widest} workers shm replay_pps "
                f"{shm_pps:.0f} below {PROCS_SHM_SPEEDUP}x the pipe "
                f"transport's {pipe_pps:.0f} on {cores} core(s); the "
                f"shared-memory data plane is not paying for itself"
            )
    return failures


def compare_dirs(
    baseline_dir: pathlib.Path,
    fresh_dir: pathlib.Path,
    tolerance: float,
    select: List[str] | None = None,
) -> List[str]:
    """Compare every baseline BENCH_*.json with its fresh counterpart.

    With ``select``, only the named files are gated (each CI matrix job
    runs one sweep, so its gate must not demand the others' fresh
    results — nor their baselines, for the budget-gated rule).
    """
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if select is not None:
        known = {path.name for path in baselines}
        baselines = [path for path in baselines if path.name in select]
        for name in sorted(set(select) - known):
            # Selecting a file is claiming responsibility for gating
            # it; a missing committed baseline must not pass silently.
            return [
                f"{name}: selected but no committed baseline in "
                f"{baseline_dir}"
            ]
    if not baselines:
        return [f"no BENCH_*.json baselines found in {baseline_dir}"]
    failures: List[str] = []
    present = {path.name for path in baselines}
    for required in BUDGET_GATED:
        if select is not None and required not in select:
            continue
        # A deleted baseline must read as a gate failure, not as "one
        # fewer file to compare".
        if required not in present:
            failures.append(
                f"{required}: budget-gating baseline missing from "
                f"{baseline_dir}; restore the committed baseline"
            )
    for baseline_path in baselines:
        fresh_path = fresh_dir / baseline_path.name
        if not fresh_path.exists():
            failures.append(f"{baseline_path.name}: missing from fresh results")
            continue
        print(f"comparing {baseline_path.name}:")
        failures.extend(compare_file(baseline_path, fresh_path, tolerance))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True, help="directory of committed baselines"
    )
    parser.add_argument(
        "--fresh", required=True, help="directory of freshly produced results"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional throughput regression (default 0.25)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated BENCH_*.json names to gate (default: all)",
    )
    args = parser.parse_args(argv)

    select = None
    if args.select:
        select = [name.strip() for name in args.select.split(",") if name.strip()]
    failures = compare_dirs(
        pathlib.Path(args.baseline),
        pathlib.Path(args.fresh),
        args.tolerance,
        select=select,
    )
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
