"""Benchmark-regression gate: diff fresh BENCH_*.json against baselines.

Usage::

    python benchmarks/compare_bench.py --baseline DIR --fresh DIR \
        [--tolerance 0.25]

Both directories hold ``BENCH_*.json`` files as written by the sweep
benchmarks (a list of per-point records). For every baseline file with
a fresh counterpart, records are matched by ``(nf, flow_count)`` — or
by ``(nf, lag)`` for records carrying a ``lag`` field (the failover
availability sweep) — and the gate fails (exit 1) when any matched
point:

- regresses more than ``tolerance`` (default 25%) in replay throughput
  (``replay_pps_off`` or ``replay_pps_on``),
- regresses more than ``tolerance`` in a lower-is-better recovery
  metric (``recovery_us``), or loses flows a synchronous baseline
  kept (``flows_lost`` grew from zero), or
- lost the differential byte-identity (``identical`` went false).

Independently of the baseline, every fresh file must preserve the
paper's NF cost ordering — noop < unverified-nat < verified-nat in
modeled per-packet busy time — at every flow count it covers.

Points present only in the baseline (e.g. the CI smoke scale sweeps
fewer flow counts) are reported but do not fail the gate; a fresh file
sharing *no* point with its baseline does, since the gate would
otherwise pass vacuously.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Tuple

ORDERED_NFS = ("noop", "unverified-nat", "verified-nat")

THROUGHPUT_FIELDS = ("replay_pps_off", "replay_pps_on")

#: Lower is better: a fresh value *above* baseline is the regression.
#: (``flows_lost`` is gated separately — nonzero losses scale with the
#: workload, so only its 0 -> >0 transition fails the gate.)
RECOVERY_FIELDS = ("recovery_us",)


def _key_of(record: Dict) -> Tuple[str, int]:
    """Records with a ``lag`` field (failover sweep) key on it; the
    throughput sweeps key on ``flow_count``."""
    if "lag" in record:
        return (record["nf"], record["lag"])
    return (record["nf"], record["flow_count"])


def _load(path: pathlib.Path) -> Dict[Tuple[str, int], Dict]:
    records = json.loads(path.read_text())
    return {_key_of(r): r for r in records}


def compare_file(
    baseline_path: pathlib.Path,
    fresh_path: pathlib.Path,
    tolerance: float,
) -> List[str]:
    """Compare one benchmark file pair; returns failure messages."""
    failures: List[str] = []
    baseline = _load(baseline_path)
    fresh = _load(fresh_path)
    name = fresh_path.name

    common = sorted(set(baseline) & set(fresh))
    if not common:
        return [f"{name}: no common (nf, flow_count) points with baseline"]
    for key in sorted(set(baseline) - set(fresh)):
        print(f"  {name}: baseline-only point {key} (skipped)")

    for key in common:
        base, new = baseline[key], fresh[key]
        if base.get("identical", True) and not new.get("identical", True):
            failures.append(f"{name}: {key} lost differential byte-identity")
        for field in THROUGHPUT_FIELDS:
            old_value = base.get(field)
            new_value = new.get(field)
            if not old_value or new_value is None:
                continue
            change = (new_value - old_value) / old_value
            marker = ""
            if change < -tolerance:
                failures.append(
                    f"{name}: {key} {field} regressed "
                    f"{-change:.1%} (> {tolerance:.0%} tolerance): "
                    f"{old_value:.0f} -> {new_value:.0f}"
                )
                marker = "  << REGRESSION"
            print(
                f"  {name}: {key[0]}@{key[1]} {field} "
                f"{old_value:.0f} -> {new_value:.0f} ({change:+.1%}){marker}"
            )
        for field in RECOVERY_FIELDS:
            old_value = new_value = None
            if field in base and field in new:
                old_value, new_value = base[field], new[field]
            if old_value is None or new_value is None:
                continue
            if old_value == 0:
                # A synchronous baseline lost nothing; any fresh loss
                # is a correctness regression, not a percentage.
                if new_value > 0:
                    failures.append(
                        f"{name}: {key} {field} regressed from 0 "
                        f"to {new_value}"
                    )
                continue
            change = (new_value - old_value) / old_value
            marker = ""
            if change > tolerance:
                failures.append(
                    f"{name}: {key} {field} regressed "
                    f"{change:.1%} (> {tolerance:.0%} tolerance): "
                    f"{old_value:.0f} -> {new_value:.0f}"
                )
                marker = "  << REGRESSION"
            print(
                f"  {name}: {key[0]}@{key[1]} {field} "
                f"{old_value:.0f} -> {new_value:.0f} ({change:+.1%}){marker}"
            )
        if "flows_lost" in base and "flows_lost" in new:
            # Nonzero flow loss scales with the workload, so only the
            # 0 -> >0 transition (a lossless point starting to lose
            # flows) gates, not a percentage.
            if base["flows_lost"] == 0 and new["flows_lost"] > 0:
                failures.append(
                    f"{name}: {key} flows_lost regressed from 0 "
                    f"to {new['flows_lost']}"
                )

    # NF ordering within the fresh results: modeled per-packet cost must
    # keep the paper's structure at every flow count the file covers.
    by_flow: Dict[int, Dict[str, float]] = {}
    for (nf, flow_count), record in fresh.items():
        busy = record.get("modeled_busy_ns_off")
        if busy is not None:
            by_flow.setdefault(flow_count, {})[nf] = busy
    for flow_count, busy_by_nf in sorted(by_flow.items()):
        present = [nf for nf in ORDERED_NFS if nf in busy_by_nf]
        costs = [busy_by_nf[nf] for nf in present]
        if costs != sorted(costs):
            failures.append(
                f"{name}: NF cost ordering lost at {flow_count} flows: "
                + ", ".join(f"{nf}={busy_by_nf[nf]:.0f}ns" for nf in present)
            )
    return failures


def compare_dirs(
    baseline_dir: pathlib.Path, fresh_dir: pathlib.Path, tolerance: float
) -> List[str]:
    """Compare every baseline BENCH_*.json with its fresh counterpart."""
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        return [f"no BENCH_*.json baselines found in {baseline_dir}"]
    failures: List[str] = []
    for baseline_path in baselines:
        fresh_path = fresh_dir / baseline_path.name
        if not fresh_path.exists():
            failures.append(f"{baseline_path.name}: missing from fresh results")
            continue
        print(f"comparing {baseline_path.name}:")
        failures.extend(compare_file(baseline_path, fresh_path, tolerance))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True, help="directory of committed baselines"
    )
    parser.add_argument(
        "--fresh", required=True, help="directory of freshly produced results"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional throughput regression (default 0.25)",
    )
    args = parser.parse_args(argv)

    failures = compare_dirs(
        pathlib.Path(args.baseline), pathlib.Path(args.fresh), args.tolerance
    )
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
