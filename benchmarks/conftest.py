"""Shared benchmark configuration.

Every benchmark regenerates one table/figure of the paper's evaluation
(§6) or verification statistics (§5). Results are printed and saved
under ``benchmarks/results/``.

Scale is controlled by ``REPRO_EVAL_SCALE``:

- ``quick`` (default): minutes-scale runs preserving every claimed shape;
- ``paper``: the paper's full parameter grid (tens of minutes);
- ``smoke``: the CI smoke grid — fewer sweep points at unchanged
  per-point fidelity, so the ordering/scaling assertions still bite.
"""

import os
import pathlib

import pytest

from repro.eval.experiments import EvalSettings

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def scale() -> str:
    return os.environ.get("REPRO_EVAL_SCALE", "quick")


def latency_settings(expiration_seconds: float = 2.0) -> EvalSettings:
    if scale() == "paper":
        return EvalSettings(
            background_pps=100_000,
            measure_seconds=2.0,
            probe_flows=1_000,
            probe_pps=0.47,
            expiration_seconds=expiration_seconds,
        )
    return EvalSettings(
        background_pps=100_000,
        measure_seconds=0.5,
        probe_flows=1_000,
        probe_pps=0.47,
        expiration_seconds=expiration_seconds,
    )


def latency_occupancies() -> tuple:
    if scale() == "paper":
        return (1_000, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 64_000)
    return (1_000, 10_000, 30_000, 60_000, 64_000)


def throughput_settings() -> EvalSettings:
    if scale() == "paper":
        return EvalSettings(
            expiration_seconds=60.0,
            throughput_packets=50_000,
            throughput_iterations=9,
        )
    return EvalSettings(
        expiration_seconds=60.0,
        throughput_packets=20_000,
        throughput_iterations=7,
    )


def throughput_flow_counts() -> tuple:
    if scale() == "paper":
        return (1_000, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 64_000)
    return (1_000, 32_000, 64_000)


def burst_sweep_sizes() -> tuple:
    if scale() == "paper":
        return (1, 2, 4, 8, 16, 32, 64, 128)
    if scale() == "smoke":
        return (1, 4, 32)
    return (1, 2, 4, 8, 16, 32)


def burst_sweep_packet_count() -> int:
    return 20_000 if scale() == "paper" else 6_000


def shard_worker_counts() -> tuple:
    if scale() == "paper":
        return (1, 2, 4, 8, 16)
    if scale() == "smoke":
        return (1, 2, 4)
    return (1, 2, 4, 8)


def shard_packet_count() -> int:
    """Per-worker packet budget for the shard sweep (scales with width)."""
    return 10_000 if scale() == "paper" else 4_000


def fastpath_flow_counts() -> tuple:
    """Flow-locality regimes for the microflow-cache sweep.

    Few flows → near-100% hit rate; flow counts approaching the packet
    budget → the cache never converges and most packets take the slow
    path. Both ends must keep the NF ordering and byte-identity.
    """
    if scale() == "paper":
        return (64, 1_024, 4_096, 16_384)
    if scale() == "smoke":
        return (64, 1_024)
    return (64, 1_024, 4_096)


def fastpath_packet_count() -> int:
    if scale() == "paper":
        return 20_000
    if scale() == "smoke":
        return 4_000
    return 6_000


def failover_lags() -> tuple:
    """Replication lags for the availability sweep (0 = synchronous)."""
    if scale() == "paper":
        return (0, 2, 8, 32, 128)
    if scale() == "smoke":
        return (0, 8)
    return (0, 8, 64)


def failover_flow_count() -> int:
    if scale() == "paper":
        return 1_024
    if scale() == "smoke":
        return 96
    return 192


def procs_worker_counts() -> tuple:
    """Worker-process counts for the process-runtime scaling sweep.

    The smoke grid keeps the 4-worker point: the CI gate's scaling
    claim ("4 workers ≥ 2x of 1 on a ≥4-core box") lives there.
    """
    if scale() == "paper":
        return (1, 2, 4, 8)
    return (1, 2, 4)


def procs_packet_count() -> int:
    if scale() == "paper":
        return 12_000
    if scale() == "smoke":
        return 2_000
    return 4_000


def chain_scenario_rounds() -> int:
    """Traffic rounds per chain scenario.

    The warm-upgrade SLA maths needs enough rounds that the one
    deliberately abandoned in-flight round stays under the 10%% loss
    floor; 16 is the minimum comfortable margin, so smoke keeps it.
    """
    if scale() == "paper":
        return 48
    return 16


def chain_flow_count() -> int:
    if scale() == "paper":
        return 256
    if scale() == "smoke":
        return 24
    return 64


def cgnat_flow_counts() -> tuple:
    """1x/10x/100x flow regimes for the stateless-CGNAT scaling sweep.

    Deliberately the same grid at every scale: the sweep's entire claim
    is the 100x point (the stateless NAT's footprint not moving while
    the stateful NATs' grows), the committed baseline covers all three
    points, and the budget gate requires every baseline point matched —
    so smoke may not shrink the grid. The sweep replays one packet per
    flow, which keeps even the 100x point seconds-scale.
    """
    return (512, 5_120, 51_200)


@pytest.fixture
def publish():
    """Print a result table and persist it under benchmarks/results/."""

    def _publish(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _publish


@pytest.fixture
def publish_snapshot():
    """Persist a metrics snapshot as ``<name>.metrics.json`` + ``.prom``.

    Every sweep emits one alongside its rendered table, in the shared
    ``repro-obs/v1`` schema (see ``docs/OBSERVABILITY.md``).
    """

    def _publish(name: str, snapshot) -> None:
        from repro.obs.expo import write_snapshot_files

        write_snapshot_files(snapshot, RESULTS_DIR, name)

    return _publish
