"""Chain scenario sweep: the operational suite over the reference chain.

Not a figure of the paper — the paper verifies one NF in isolation —
but real deployments run NFs in chains and operate them live. The
sweep runs the full scenario suite (warm upgrade via coordinated
checkpoint/restore, active/standby stage promotion, seeded chaos soak)
over the firewall → limiter → NAT chain and gates three contracts:

(a) **every declared SLA holds**: measured availability, disruption
    window, flow-mapping survival and post-disruption probe loss stay
    within each scenario's budget;
(b) **upgrades and promotions preserve state**: not one NAT mapping
    observed before the disruption may change after it
    (``flows_lost == 0`` — packets may die, connections may not);
(c) **chaos is confined**: the fault storm demonstrably fired (drops/
    reorders/corruption applied) yet the post-window probe rounds are
    lossless.

The measured numbers are published to
``benchmarks/results/BENCH_chain.json`` alongside the rendered table.
"""

import json

from benchmarks.conftest import (
    RESULTS_DIR,
    chain_flow_count,
    chain_scenario_rounds,
)
from repro.chain import chain_breaches, chain_scenarios, default_chain_spec
from repro.eval.reporting import render_chain_scenarios
from repro.obs import merge_snapshots, snapshot_of_counters

SCENARIOS = ("warm-upgrade", "promote-stage", "chaos-soak")


def _report_snapshot(report):
    """One scenario's measurements in the shared snapshot schema."""
    return snapshot_of_counters(
        {
            "chain_scenario_offered": report.offered,
            "chain_scenario_delivered": report.delivered,
            "chain_scenario_lost": report.lost,
            "chain_scenario_disruption_us": report.disruption_us,
            "chain_scenario_flows_lost": report.flows_lost,
            "chain_scenario_probe_lost": report.probe_lost,
        },
        labels={"nf": "chain", "scenario": report.scenario},
        help_text="chain-scenario measured disruption ledger",
    )


def test_chain_sweep(benchmark, publish, publish_snapshot):
    rounds = chain_scenario_rounds()
    flows = chain_flow_count()
    spec = default_chain_spec(max_flows=max(64, 2 * flows))
    reports = benchmark.pedantic(
        lambda: chain_scenarios(spec, flows=flows, rounds=rounds),
        rounds=1,
        iterations=1,
    )
    publish("chain_sweep", render_chain_scenarios(reports))
    publish_snapshot(
        "chain_sweep", merge_snapshots([_report_snapshot(r) for r in reports])
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_chain.json").write_text(
        json.dumps([r.to_record() for r in reports], indent=2) + "\n"
    )

    by_scenario = {r.scenario: r for r in reports}
    assert set(by_scenario) == set(SCENARIOS)

    for report in reports:
        # Each scenario offered real traffic and was genuinely
        # disruptive-capable: the ledger adds up.
        assert report.offered == flows * max(rounds, 9), report.scenario
        assert report.delivered + report.lost == report.offered
        # (b) no scenario may cost a single NAT mapping.
        assert report.flows_lost == 0, report.scenario
        # Post-disruption probes prove the chain serves again.
        assert report.probe_offered > 0, report.scenario
        assert report.probe_lost == 0, report.scenario

    upgrade = by_scenario["warm-upgrade"]
    # The upgrade abandoned exactly one in-flight round — measured, and
    # the measured window covers exactly that round.
    assert upgrade.lost == flows
    assert upgrade.disruption_us == upgrade.details["tick_us"]
    assert upgrade.action_wall_us > 0

    promotion = by_scenario["promote-stage"]
    # The stage was down for the configured rounds and not one more.
    down = promotion.details["down_rounds"]
    assert promotion.lost == down * flows
    assert promotion.disruption_us == down * promotion.details["tick_us"]

    soak = by_scenario["chaos-soak"]
    # (c) the storm fired for real — including the reordering link —
    # and everything it cost happened inside the window.
    applied = soak.details["faults_applied"]
    assert applied.get("reorder", 0) > 0, applied
    assert sum(applied.values()) > 0
    window_start, window_end = soak.details["window_us"]
    assert soak.disruption_us <= window_end - window_start + soak.details["tick_us"]

    # (a) the SLA gate the CLI enforces holds here too.
    assert chain_breaches(reports) == []
