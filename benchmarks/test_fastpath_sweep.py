"""Microflow fast-path sweep: the action cache across hit-rate regimes.

Not a figure of the paper — the paper's NAT has no flow cache — but the
fast path must honor the reproduction's two standing contracts while
buying real throughput:

(a) **invisibility**: with the cache on, every emitted frame is
    byte-identical to the cache-off run at every locality regime (the
    sweep's differential replay checks this per point);
(b) **ordering**: the paper's no-op < unverified < verified service-cost
    structure survives at every hit rate — the cache accelerates every
    NF, it never reorders them;
(c) **payoff**: at a 90%+ hit-rate regime the verified NAT's bare
    data-path replay speeds up ≥ 1.5× in wall-clock terms;
(d) **compiled payoff**: on the raw byte path the batch-applied
    compiled closures (``fastpath="compiled"``) beat the replay cache
    ≥ 1.3× on the verified NAT at a 90%+ hit rate, and never lose to
    the no-fast-path baseline on the no-op forwarder (the regime where
    a too-heavy cache historically did) — while every raw mode stays
    byte-identical to the object-path replay.

The measured numbers (replay pkts/sec, hit rates, cache + compile
counters) are published to ``benchmarks/results/BENCH_fastpath.json``
alongside the rendered table; when any differential check trips, the
first divergent packet's wire bytes land in
``benchmarks/results/fastpath_divergence.txt`` for the CI failure
artifact.
"""

import json

from benchmarks.conftest import (
    RESULTS_DIR,
    fastpath_flow_counts,
    fastpath_packet_count,
)
from repro.eval.experiments import fastpath_sweep
from repro.eval.reporting import render_fastpath_sweep
from repro.obs import merge_snapshots, snapshot_of_counters

ORDERED_NFS = ("noop", "unverified-nat", "verified-nat")

#: Raw-path acceptance: compiled closures over the replay cache on the
#: verified NAT in the hot regime (mirrored by compare_bench.py's
#: fresh-file invariant so the committed baseline gates it too).
COMPILED_MIN_SPEEDUP = 1.3


def _point_snapshot(point):
    """One sweep point's cache counters in the shared snapshot schema."""
    return snapshot_of_counters(
        {k: v for k, v in point.counters.items() if k.startswith("fastpath_")},
        labels={"nf": point.nf, "flows": str(point.flow_count)},
        help_text="fastpath-sweep cache counters",
    )


def _bench_record(point, packet_count):
    packets = point.counters.get("fastpath_hits", 0) + point.counters.get(
        "fastpath_misses", 0
    )

    def raw_pps(seconds):
        # One raw timed pass replays the whole event trace once.
        return round(packet_count / seconds, 1) if seconds > 0 else 0.0

    return {
        "nf": point.nf,
        "flow_count": point.flow_count,
        "burst_size": point.burst_size,
        "hit_rate": round(point.hit_rate, 4),
        "identical": point.identical,
        "wall_seconds_off": round(point.wall_seconds_off, 6),
        "wall_seconds_on": round(point.wall_seconds_on, 6),
        "wall_speedup": round(point.wall_speedup, 3),
        "replay_pps_off": round((packets / 2) / point.wall_seconds_off, 1)
        if point.wall_seconds_off > 0
        else 0.0,
        "replay_pps_on": round((packets / 2) / point.wall_seconds_on, 1)
        if point.wall_seconds_on > 0
        else 0.0,
        "modeled_busy_ns_off": round(point.per_packet_busy_ns_off, 1),
        "modeled_busy_ns_on": round(point.per_packet_busy_ns_on, 1),
        "modeled_mpps_off": round(point.implied_mpps_off, 3),
        "modeled_mpps_on": round(point.implied_mpps_on, 3),
        "supports_raw": point.supports_raw,
        "raw_identical": point.raw_identical,
        "raw_pps_off": raw_pps(point.raw_wall_seconds_off),
        "raw_pps_cache": raw_pps(point.raw_wall_seconds_cache),
        "raw_pps_compiled": raw_pps(point.raw_wall_seconds_compiled),
        "compiled_speedup_over_cache": round(
            point.compiled_speedup_over_cache, 3
        ),
        "compiled_speedup_over_off": round(point.compiled_speedup_over_off, 3),
        "counters": {
            key: value
            for key, value in point.counters.items()
            if key.startswith("fastpath_")
        },
        "compiled_counters": dict(point.compiled_counters),
        "metrics": _point_snapshot(point),
    }


def _write_divergence_artifact(points) -> None:
    """Persist first-divergence wire bytes for the CI failure artifact.

    Written before any assertion runs so a tripped gate still leaves
    the evidence on disk; an all-identical sweep leaves a one-line
    marker instead (the CI step can upload unconditionally).
    """
    sections = []
    for point in points:
        for axis, diff in (
            ("object-path cache", point.divergence),
            ("raw/compiled", point.raw_divergence),
        ):
            if diff is not None:
                sections.append(
                    f"== {point.nf} @ {point.flow_count} flows ({axis}) ==\n"
                    + diff.render()
                )
    text = "\n\n".join(sections) if sections else (
        "no divergence: every replay mode byte-identical at every point"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fastpath_divergence.txt").write_text(text + "\n")


def test_fastpath_sweep(benchmark, publish, publish_snapshot):
    flow_counts = fastpath_flow_counts()
    points = benchmark.pedantic(
        lambda: fastpath_sweep(
            flow_counts=flow_counts, packet_count=fastpath_packet_count()
        ),
        rounds=1,
        iterations=1,
    )
    publish("fastpath_sweep", render_fastpath_sweep(points))
    publish_snapshot(
        "fastpath_sweep", merge_snapshots([_point_snapshot(p) for p in points])
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fastpath.json").write_text(
        json.dumps(
            [_bench_record(p, fastpath_packet_count()) for p in points],
            indent=2,
        )
        + "\n"
    )
    # Evidence before judgment: the table, JSON and divergence bytes
    # are all on disk before the first assert can end the test.
    _write_divergence_artifact(points)

    # (a) Invisibility: byte-identity at every point, no exceptions —
    # on the object path and across every raw-frame mode.
    for point in points:
        assert point.identical, (point.nf, point.flow_count)
        assert point.raw_identical, (point.nf, point.flow_count)

    # (b) The paper's cost ordering survives with the cache on and off,
    # at every locality regime.
    busy_on = {(p.nf, p.flow_count): p.per_packet_busy_ns_on for p in points}
    busy_off = {(p.nf, p.flow_count): p.per_packet_busy_ns_off for p in points}
    for flows in flow_counts:
        for busy in (busy_on, busy_off):
            assert (
                busy[("noop", flows)]
                < busy[("unverified-nat", flows)]
                < busy[("verified-nat", flows)]
            ), (flows, busy)

    # The cache lowers every NF's modeled cost wherever it converges.
    # In churning regimes (flow count near the packet budget) it may
    # not: every miss pays one extra flow-table consult on the learn
    # path, a real overhead the model charges — but it stays within a
    # few ns of the cache-off cost.
    for point in points:
        if point.hit_rate >= 0.9:
            assert point.per_packet_busy_ns_on < point.per_packet_busy_ns_off, (
                point.nf,
                point.flow_count,
            )
        else:
            assert (
                point.per_packet_busy_ns_on
                <= point.per_packet_busy_ns_off * 1.03
            ), (point.nf, point.flow_count)

    # (c) The payoff: at the high-locality end the verified NAT's slow
    # path is hit rarely enough that the bare replay speeds up ≥ 1.5×.
    hot = [
        p
        for p in points
        if p.nf == "verified-nat" and p.hit_rate >= 0.9
    ]
    assert hot, "no verified-nat point reached a 90% hit rate"
    assert max(p.wall_speedup for p in hot) >= 1.5, [
        (p.flow_count, p.hit_rate, p.wall_speedup) for p in hot
    ]

    # (d) The compiled payoff, on the raw byte path. The verified NAT
    # must clear COMPILED_MIN_SPEEDUP over the replay cache somewhere
    # in the hot regime, and the no-op forwarder — where a fast path
    # that costs more than it saves shows first — must not lose to
    # running with no fast path at all.
    raw_points = [p for p in points if p.supports_raw]
    assert raw_points, "no NF exposed the raw byte path"
    hot_raw = [
        p
        for p in raw_points
        if p.nf == "verified-nat" and p.hit_rate >= 0.9
    ]
    assert hot_raw, "no raw-capable verified-nat point reached a 90% hit rate"
    assert max(
        p.compiled_speedup_over_cache for p in hot_raw
    ) >= COMPILED_MIN_SPEEDUP, [
        (p.flow_count, p.hit_rate, round(p.compiled_speedup_over_cache, 3))
        for p in hot_raw
    ]
    for point in raw_points:
        if point.nf == "noop":
            assert point.compiled_speedup_over_off >= 1.0, (
                point.flow_count,
                round(point.compiled_speedup_over_off, 3),
            )

    # The compiler's accounting surfaces: every raw-capable point
    # compiled at least one closure, batch-applied it, and rejected
    # nothing (a rejection means the compiler and slow path disagreed).
    for point in raw_points:
        compiled = point.compiled_counters
        assert compiled.get("fastpath_compiles", 0) >= 1, point.nf
        assert compiled.get("fastpath_compiled_hits", 0) > 0, point.nf
        assert compiled.get("fastpath_compiled_batches", 0) > 0, point.nf
        assert compiled.get("fastpath_compile_rejected", 0) == 0, (
            point.nf,
            compiled,
        )

    # The cache's accounting surfaces: hits + misses covers the replayed
    # traffic, and the hot regime is dominated by hits.
    for point in points:
        counters = point.counters
        assert counters["fastpath_hits"] + counters["fastpath_misses"] > 0
        assert counters["fastpath_learns"] >= 1
    hottest = min(flow_counts)
    for nf in ORDERED_NFS:
        point = next(
            p for p in points if p.nf == nf and p.flow_count == hottest
        )
        assert point.hit_rate >= 0.9, (nf, point.hit_rate)
