"""Burst-size sweep: DPDK's batching lever on the reproduction's NFs.

Not a figure of the paper — the paper's NATs run one packet at a time —
but the burst-mode data path must (a) cut per-packet cost as the burst
grows, since the per-burst fixed work (flow expiry scan, env setup)
amortizes, and (b) preserve the paper's relative cost structure
no-op < unverified < verified ≪ NetFilter at every burst size, so the
§6 comparisons stay valid when batching is enabled.
"""

from benchmarks.conftest import burst_sweep_packet_count, burst_sweep_sizes
from repro.eval.experiments import burst_size_sweep
from repro.eval.reporting import render_burst_sweep
from repro.obs import merge_snapshots, snapshot_of_counters


def test_burst_sweep(benchmark, publish, publish_snapshot):
    sizes = burst_sweep_sizes()
    points = benchmark.pedantic(
        lambda: burst_size_sweep(
            burst_sizes=sizes, packet_count=burst_sweep_packet_count()
        ),
        rounds=1,
        iterations=1,
    )
    publish("burst_sweep", render_burst_sweep(points))
    publish_snapshot(
        "burst_sweep",
        merge_snapshots(
            [
                snapshot_of_counters(
                    p.counters,
                    labels={"nf": p.nf, "burst_size": str(p.burst_size)},
                    prefix="burst_sweep_",
                    help_text="burst-sweep NF counters",
                )
                for p in points
            ]
        ),
    )

    cost = {(p.nf, p.burst_size): p.per_packet_busy_ns for p in points}
    fill = {(p.nf, p.burst_size): p.avg_burst_fill for p in points}

    # Saturating load fills the bursts; otherwise the sweep measures nothing.
    for nf in ("noop", "unverified-nat", "verified-nat", "linux-nat"):
        assert fill[(nf, sizes[-1])] > sizes[-1] * 0.9, (nf, fill[(nf, sizes[-1])])

    # (a) per-packet cost decreases with burst size for the verified NAT,
    # substantially overall (the expiry scan is its amortizable share).
    verified = [cost[("verified-nat", b)] for b in sizes]
    for smaller, larger in zip(verified, verified[1:]):
        assert larger <= smaller, verified
    assert verified[-1] < verified[0] * 0.80, verified

    # (b) the relative cost structure holds at every burst size.
    for b in sizes:
        assert (
            cost[("noop", b)]
            < cost[("unverified-nat", b)]
            < cost[("verified-nat", b)]
        ), b
        assert cost[("linux-nat", b)] > 2.5 * cost[("verified-nat", b)], b

    # Burst size 1 reproduces the paper's single-packet service costs
    # (the Fig. 14 headline rates: ~2.0 / ~1.8 / ~0.6 Mpps).
    mpps = {(p.nf, p.burst_size): p.implied_mpps for p in points}
    assert abs(mpps[("unverified-nat", 1)] - 2.0) < 0.3
    assert abs(mpps[("verified-nat", 1)] - 1.8) < 0.3
    assert abs(mpps[("linux-nat", 1)] - 0.6) < 0.2
