"""Fig. 13: latency CCDF for the three DPDK NFs at 92% occupancy.

Paper's result: the verified NAT has a slightly heavier tail than the
unverified one in the 5-6.5 µs region; all three NFs share rare outliers
two orders of magnitude above the average (DPDK stalls, not
NAT-specific processing) — the curves coincide beyond ~6.5 µs.
"""

from benchmarks.conftest import latency_settings, scale
from repro.eval.experiments import latency_ccdf
from repro.eval.reporting import render_fig13


def test_fig13_latency_ccdf(benchmark, publish):
    settings = latency_settings()
    background = 60_000 if scale() == "paper" else 30_000

    series = benchmark.pedantic(
        lambda: latency_ccdf(background_flows=background, settings=settings),
        rounds=1,
        iterations=1,
    )
    publish("fig13_ccdf", render_fig13(series, background_flows=background))

    by_nf = {s.nf: s for s in series}
    # The verified NAT's tail at 5.5 µs is at least the unverified one's.
    assert by_nf["verified-nat"].probability_above(5.5) >= by_nf[
        "unverified-nat"
    ].probability_above(5.5)
    # The noop curve is strictly to the left in the processing region.
    assert by_nf["noop"].probability_above(5.0) <= by_nf[
        "verified-nat"
    ].probability_above(5.0)
    # Outlier region: every NF has some probability mass far above the
    # average, and the curves are within an order of magnitude of each
    # other there (same DPDK cause).
    tails = [s.probability_above(100.0) for s in series]
    assert all(t >= 0 for t in tails)
    positive = [t for t in tails if t > 0]
    if len(positive) >= 2:
        assert max(positive) / min(positive) < 25
