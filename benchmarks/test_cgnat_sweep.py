"""Stateless-CGNAT scaling sweep: memory flatness at 10x/100x flows.

Not a figure of the paper — the paper's NAT is stateful by design — but
the deterministic CGNAT's value proposition is a scaling claim, and a
scaling claim needs a sweep that can falsify it:

(a) **memory flatness**: at 1x/10x/100x flow counts the stateless
    ``det-nat`` holds zero flow-table entries and a byte-identical
    checkpoint — its footprint is the config, not the traffic;
(b) **the stateful contrast**: ``unverified-nat`` and ``verified-nat``
    driven by the same workload grow state entries exactly with the
    flow count, so the comparison measures what it claims to;
(c) **return-path correctness**: replies to sampled translated ports
    reach the internal endpoints that originated them — statelessness
    must not cost the reverse mapping.

The measured numbers are published to
``benchmarks/results/BENCH_cgnat.json`` alongside the rendered table;
the CI regression gate (``benchmarks/compare_bench.py``) re-checks the
flatness invariant on every fresh file and treats a missing baseline
point as a hard error.
"""

import json

from benchmarks.conftest import RESULTS_DIR, cgnat_flow_counts
from repro.eval.experiments import cgnat_flatness_breaches, cgnat_sweep
from repro.eval.reporting import render_cgnat_sweep
from repro.obs import merge_snapshots, snapshot_of_counters

CGNAT_NFS = ("det-nat", "unverified-nat", "verified-nat")


def _point_snapshot(point):
    """One sweep point's op counters in the shared snapshot schema."""
    return snapshot_of_counters(
        {k: v for k, v in point.counters.items() if isinstance(v, int)},
        labels={"nf": point.nf, "flow_count": str(point.flow_count)},
        help_text="cgnat-sweep op counters",
    )


def _bench_record(point):
    return {
        "nf": point.nf,
        "flow_count": point.flow_count,
        # Named replay_pps_off so the regression gate's throughput
        # tolerance applies (compare_bench THROUGHPUT_FIELDS); the
        # return-path differential rides its byte-identity check.
        "replay_pps_off": point.replay_pps,
        "state_entries": point.state_entries,
        "checkpoint_bytes": point.checkpoint_bytes,
        "identical": point.return_path_ok,
    }


def test_cgnat_sweep(benchmark, publish, publish_snapshot):
    flow_counts = cgnat_flow_counts()
    points = benchmark.pedantic(
        lambda: cgnat_sweep(flow_counts=flow_counts),
        rounds=1,
        iterations=1,
    )
    publish("cgnat_sweep", render_cgnat_sweep(points))
    publish_snapshot(
        "cgnat_sweep", merge_snapshots([_point_snapshot(p) for p in points])
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_cgnat.json").write_text(
        json.dumps([_bench_record(p) for p in points], indent=2) + "\n"
    )

    by_nf = {}
    for point in points:
        by_nf.setdefault(point.nf, []).append(point)
    assert set(by_nf) == set(CGNAT_NFS)
    for nf in CGNAT_NFS:
        assert sorted(p.flow_count for p in by_nf[nf]) == sorted(flow_counts)

    for point in points:
        # (c) Replies routed back to their originating internal endpoints.
        assert point.return_path_ok, (point.nf, point.flow_count)
        assert point.replay_pps > 0

    # (a) Memory flatness: zero state, byte-identical checkpoint across
    # a 100x flow-count spread.
    det = by_nf["det-nat"]
    assert all(p.state_entries == 0 for p in det)
    assert len({p.checkpoint_bytes for p in det}) == 1, [
        (p.flow_count, p.checkpoint_bytes) for p in det
    ]

    # (b) The stateful contrast: entries track the flow count exactly.
    for nf in ("unverified-nat", "verified-nat"):
        for point in by_nf[nf]:
            assert point.state_entries == point.flow_count, (
                nf,
                point.flow_count,
                point.state_entries,
            )

    # The invariant the CLI artifact and CI gate enforce holds here too.
    assert cgnat_flatness_breaches(points) == []
