"""§6 in-text numbers: the 60 s-expiry variant and the Linux NAT latency.

Paper's in-text results:

- with a 60 s flow timeout (so probe flows never expire and take the
  cheaper hit path), the verified NAT's average latency is slightly
  *lower* (5.07 µs) while the unverified NAT stays at 5.03 µs;
- the NAT-specific processing adds ~0.28 µs (unverified) and ~0.38 µs
  (verified) over no-op forwarding;
- the Linux NAT's latency is ≈20 µs, ~4x the DPDK NFs.
"""

from benchmarks.conftest import latency_settings, scale
from repro.eval.experiments import default_nf_factories, latency_vs_occupancy
from repro.eval.reporting import render_fig12


def test_sixty_second_expiry_variant(benchmark, publish):
    settings2s = latency_settings(expiration_seconds=2.0)
    settings60s = latency_settings(expiration_seconds=60.0)
    occupancy = 10_000

    def run():
        two = latency_vs_occupancy(occupancies=(occupancy,), settings=settings2s)
        sixty = latency_vs_occupancy(occupancies=(occupancy,), settings=settings60s)
        return two, sixty

    two, sixty = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "In-text: latency with 2s vs 60s expiry (us)\n"
        + render_fig12(two)
        + "\n--- 60s expiry ---\n"
        + render_fig12(sixty)
    )
    publish("text_latency_expiry_variant", text)

    avg = {(p.nf, texp): p.avg_us for ps, texp in ((two, 2), (sixty, 60)) for p in ps}
    # 60 s expiry: probes become hit-path packets; the verified NAT gets
    # slightly cheaper, and never more expensive.
    assert avg[("verified-nat", 60)] <= avg[("verified-nat", 2)] + 0.02
    # NAT-specific processing deltas over no-op (paper: 0.28 / 0.38 µs).
    unv_delta = avg[("unverified-nat", 2)] - avg[("noop", 2)]
    ver_delta = avg[("verified-nat", 2)] - avg[("noop", 2)]
    assert 0.15 < unv_delta < 0.45
    assert 0.25 < ver_delta < 0.55
    assert ver_delta > unv_delta


def test_linux_nat_latency(benchmark, publish):
    settings = latency_settings()
    occupancy = 2_000 if scale() == "quick" else 10_000
    factories = default_nf_factories(include_linux=True)
    linux_only = {"linux-nat": factories["linux-nat"]}

    points = benchmark.pedantic(
        lambda: latency_vs_occupancy(
            factories=linux_only, occupancies=(occupancy,), settings=settings
        ),
        rounds=1,
        iterations=1,
    )
    publish("text_latency_linux", render_fig12(points))
    # Paper: ≈20 µs, ~4x the DPDK NATs.
    assert 15 < points[0].avg_us < 25
