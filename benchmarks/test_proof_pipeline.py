"""Fig. 7: the five-part proof structure, end to end, plus the §3 table.

Reproduces (a) the full lazy-proof pipeline on VigNat with every
sub-proof P1-P5 discharging, and (b) the §3 worked example's outcome
matrix for the three ring models of Fig. 4 — which sub-proof fails for
which kind of invalid model.
"""

from repro.nat.bridge import BridgeConfig
from repro.nat.config import NatConfig
from repro.nat.limiter import LimiterConfig
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.models.ring import (
    GoodRingModel,
    OverApproximateRingModel,
    UnderApproximateRingModel,
)
from repro.verif.nf_env import discard_symbolic_body, vignat_symbolic_body
from repro.verif.nf_env_bridge import BridgeSemantics, bridge_symbolic_body
from repro.verif.nf_env_fw import firewall_symbolic_body
from repro.verif.nf_env_limiter import LimiterSemantics, limiter_symbolic_body
from repro.verif.semantics import DiscardSemantics, FirewallSemantics, NatSemantics
from repro.verif.validator import Validator


def test_fig7_proof_structure(benchmark, publish):
    cfg = NatConfig()

    def run():
        result = ExhaustiveSymbolicEngine().explore(vignat_symbolic_body(cfg))
        return Validator(NatSemantics(cfg)).validate(result, "VigNat")

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("fig7_proof_structure", report.render())
    assert report.verified
    for verdict in report.verdicts():
        assert verdict.proven, verdict.summary()


def test_sec9_generalization_matrix(benchmark, publish):
    """§9: four NFs verified by the shared pipeline, one table."""
    nat_cfg = NatConfig()
    bridge_cfg = BridgeConfig()
    limiter_cfg = LimiterConfig()
    lineup = [
        ("VigNat", vignat_symbolic_body(nat_cfg), NatSemantics(nat_cfg)),
        ("VigFirewall", firewall_symbolic_body(nat_cfg), FirewallSemantics(nat_cfg)),
        ("VigBridge", bridge_symbolic_body(bridge_cfg), BridgeSemantics(bridge_cfg)),
        ("VigLimiter", limiter_symbolic_body(limiter_cfg), LimiterSemantics(limiter_cfg)),
    ]

    def run():
        rows = []
        engine = ExhaustiveSymbolicEngine()
        for name, body, semantics in lineup:
            result = engine.explore(body)
            report = Validator(semantics).validate(result, name)
            rows.append((name, report))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["§9 generalization — four NFs, one toolchain"]
    lines.append(f"{'NF':>12s}  {'paths':>5s}  {'traces':>6s}  {'obligations':>11s}  verdict")
    for name, report in rows:
        obligations = sum(v.obligations for v in report.verdicts())
        lines.append(
            f"{name:>12s}  {report.paths:>5d}  {report.traces:>6d}  "
            f"{obligations:>11d}  {'VERIFIED' if report.verified else 'FAILED'}"
        )
    publish("sec9_generalization", "\n".join(lines))
    assert all(report.verified for _name, report in rows)


def test_sec3_model_validity_matrix(benchmark, publish):
    def run():
        rows = {}
        for model in (GoodRingModel, OverApproximateRingModel, UnderApproximateRingModel):
            result = ExhaustiveSymbolicEngine().explore(discard_symbolic_body(model))
            report = Validator(DiscardSemantics()).validate(result, model.__name__)
            rows[model.__name__] = report
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["§3 worked example — model validity matrix (Fig. 4)"]
    lines.append(f"{'model':>28s}  P1    P2    P4    P5    verified")
    for name, report in rows.items():
        lines.append(
            f"{name:>28s}  "
            + "  ".join(
                "ok " if v.proven else "FAIL"
                for v in (report.p1, report.p2, report.p4, report.p5)
            )
            + f"    {report.verified}"
        )
    publish("sec3_model_matrix", "\n".join(lines))

    assert rows["GoodRingModel"].verified
    assert not rows["OverApproximateRingModel"].p1.proven
    assert rows["OverApproximateRingModel"].p5.proven
    assert rows["UnderApproximateRingModel"].p1.proven
    assert not rows["UnderApproximateRingModel"].p5.proven
