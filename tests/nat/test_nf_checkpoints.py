"""Checkpoint/restore round-trips for the firewall, bridge and limiter.

VigNat grew ``checkpoint_state``/``restore_state`` for failover; chains
snapshot every stage, so the other stateful NFs need the same contract:
full-fidelity round-trip through the serialized frame, validation
before mutation, and refusal to restore into a used NF.
"""

import pytest

from repro.nat.bridge import BridgeConfig, VigBridge
from repro.nat.config import NatConfig
from repro.nat.firewall import VigFirewall
from repro.nat.limiter import LimiterConfig, VigLimiter
from repro.packets.builder import make_udp_packet
from repro.resil.checkpoint import restore, snapshot

NAT_CFG = NatConfig(max_flows=16, expiration_time=60_000_000, start_port=1000)


def udp(src_ip, dst_ip, sport, dport, device=0):
    return make_udp_packet(src_ip, dst_ip, sport, dport, device=device)


def frame(src_mac, dst_mac, device):
    pkt = make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2, device=device)
    pkt.eth.src = bytes.fromhex(src_mac.replace(":", ""))
    pkt.eth.dst = bytes.fromhex(dst_mac.replace(":", ""))
    return pkt


class TestFirewallCheckpoint:
    def warmed(self):
        fw = VigFirewall(NAT_CFG)
        for i in range(5):
            out = fw.process(udp("10.0.0.1", "203.0.113.9", 1024 + i, 2000 + i), 10)
            assert out
        return fw

    def test_round_trip_preserves_sessions(self):
        fw = self.warmed()
        revived = VigFirewall(NAT_CFG)
        restore(revived, snapshot(fw, now_us=20))
        assert revived.session_count() == fw.session_count() == 5
        # Durable counters ride along (map_probes is a live hash-table
        # statistic, not state, so it is not part of the contract).
        for key in ("expired", "dropped", "forwarded"):
            assert revived.op_counters()[key] == fw.op_counters()[key]
        # An established session still admits its reply...
        reply = udp("203.0.113.9", "10.0.0.1", 2000, 1024, device=1)
        assert revived.process(reply, 30)
        # ...and unsolicited external traffic still bounces.
        stranger = udp("203.0.113.9", "10.0.0.1", 9999, 40_000, device=1)
        assert revived.process(stranger, 30) == []

    def test_restore_requires_fresh_nf(self):
        fw = self.warmed()
        snapshot = fw.checkpoint_state()
        with pytest.raises(ValueError, match="fresh"):
            fw.restore_state(snapshot)

    def test_restore_rejects_duplicate_sessions(self):
        fw = self.warmed()
        state = fw.checkpoint_state()
        state["sessions"][1][2] = state["sessions"][0][2]
        with pytest.raises(ValueError, match="twice"):
            VigFirewall(NAT_CFG).restore_state(state)

    def test_expiry_clock_survives(self):
        fw = self.warmed()
        revived = VigFirewall(NAT_CFG)
        restore(revived, snapshot(fw, now_us=20))
        # Advance past the idle timeout: every restored session ages
        # out on the restored clock, not a reset one.
        revived.process(udp("10.9.9.9", "203.0.113.9", 7, 8), 70_000_011)
        assert revived.session_count() == 1  # just the new flow


class TestBridgeCheckpoint:
    def warmed(self):
        bridge = VigBridge(BridgeConfig(capacity=8))
        bridge.process(frame("02:aa:00:00:00:01", "ff:ff:ff:ff:ff:ff", 0), 10)
        bridge.process(frame("02:aa:00:00:00:02", "02:aa:00:00:00:01", 1), 20)
        assert bridge.station_count() == 2
        return bridge

    def test_round_trip_preserves_stations(self):
        bridge = self.warmed()
        revived = VigBridge(BridgeConfig(capacity=8))
        restore(revived, snapshot(bridge, now_us=30))
        assert revived.station_count() == 2
        assert revived.port_of(0x02AA00000001) == 0
        assert revived.port_of(0x02AA00000002) == 1
        # Filtering still works: a frame for station 1 arriving on
        # station 1's own port is filtered, not flooded.
        same_segment = frame("02:aa:00:00:00:03", "02:aa:00:00:00:01", 0)
        assert revived.process(same_segment, 40) == []

    def test_restore_rejects_foreign_device(self):
        bridge = self.warmed()
        state = bridge.checkpoint_state()
        state["stations"][0][3] = 7  # not one of this bridge's ports
        with pytest.raises(ValueError, match="ports"):
            VigBridge(BridgeConfig(capacity=8)).restore_state(state)

    def test_restore_requires_fresh_nf(self):
        bridge = self.warmed()
        with pytest.raises(ValueError, match="fresh"):
            bridge.restore_state(bridge.checkpoint_state())


class TestLimiterCheckpoint:
    def warmed(self):
        limiter = VigLimiter(LimiterConfig(capacity=8, max_packets=3))
        for _ in range(3):
            assert limiter.process(udp("10.0.0.1", "10.0.0.9", 1, 2), 10)
        assert limiter.process(udp("10.0.0.2", "10.0.0.9", 3, 4), 10)
        return limiter

    def test_round_trip_preserves_spent_budgets(self):
        limiter = self.warmed()
        revived = VigLimiter(LimiterConfig(capacity=8, max_packets=3))
        restore(revived, snapshot(limiter, now_us=20))
        assert revived.tracked_sources() == 2
        assert revived.budget_used(0x0A000001) == 3
        assert revived.budget_used(0x0A000002) == 1
        # The exhausted source stays over budget after the restore.
        assert revived.process(udp("10.0.0.1", "10.0.0.9", 1, 2), 30) == []
        # The other source still has budget to spend.
        assert revived.process(udp("10.0.0.2", "10.0.0.9", 3, 4), 30)

    def test_restore_rejects_overspent_budget(self):
        limiter = self.warmed()
        state = limiter.checkpoint_state()
        state["budgets"][0][3] = 99  # beyond max_packets
        with pytest.raises(ValueError, match="budget"):
            VigLimiter(LimiterConfig(capacity=8, max_packets=3)).restore_state(state)

    def test_restore_requires_fresh_nf(self):
        limiter = self.warmed()
        with pytest.raises(ValueError, match="fresh"):
            limiter.restore_state(limiter.checkpoint_state())
