"""The microflow fast path: cache behavior, counters, invalidation.

The byte-identity property itself lives in
``test_fastpath_differential.py``; this file covers the cache machinery
— learn/hit/miss accounting, generation invalidation on flow churn,
rejuvenation keeping flows alive, the eviction cap, fall-through for
ineligible traffic, and the RFC 768 zero-UDP-checksum regression on
both paths.
"""

import pytest

from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat, packet_flow_key
from repro.nat.netfilter import NetfilterNat
from repro.nat.noop import NoopForwarder
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.packets.builder import make_tcp_packet, make_udp_packet
from repro.packets.headers import PROTO_ICMP, Packet

CFG = NatConfig(max_flows=64)


def outbound(sport, *, payload=b""):
    return make_udp_packet("10.0.0.5", "8.8.8.8", sport, 53, device=0, payload=payload)


def inbound(dport):
    return make_udp_packet("8.8.8.8", CFG.external_ip, 53, dport, device=1)


def render(outputs):
    return [(p.device, p.wire_bytes()) for p in outputs]


class TestConstruction:
    def test_wrapper_reports_inner_name(self):
        fast = FastPathNat(VigNat(CFG))
        assert fast.name == "verified-nat"
        assert fast.inner.name == "verified-nat"

    def test_nf_without_hooks_is_rejected(self):
        with pytest.raises(TypeError):
            FastPathNat(NetfilterNat(NatConfig(max_flows=64)))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FastPathNat(VigNat(CFG), max_entries=0)


class TestCacheAccounting:
    def test_first_packet_misses_then_hits(self):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)))
        fast.process(outbound(4000), 1_000)
        counters = fast.op_counters()
        assert counters["fastpath_misses"] == 1
        assert counters["fastpath_hits"] == 0
        assert counters["fastpath_learns"] == 1
        assert fast.cache_size == 1

        # Same flow, same generation: a pure cache hit.
        fast.process(outbound(4000), 1_001)
        counters = fast.op_counters()
        assert counters["fastpath_hits"] == 1
        assert counters["fastpath_misses"] == 1
        assert fast.hit_rate() == pytest.approx(0.5)

    def test_hit_output_matches_slow_path(self):
        slow = VigNat(NatConfig(max_flows=64))
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)))
        for t, packet in [(1_000, outbound(4000)), (1_001, outbound(4000)),
                          (1_002, outbound(4000, payload=b"hello"))]:
            assert render(fast.process(packet.clone(), t)) == render(
                slow.process(packet.clone(), t)
            )
        assert fast.op_counters()["fastpath_hits"] == 2

    def test_drops_are_never_cached(self):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)))
        # Unsolicited inbound: the slow path drops it; nothing to learn.
        assert fast.process(inbound(9000), 1_000) == []
        assert fast.cache_size == 0
        assert fast.op_counters()["fastpath_learns"] == 0

    def test_eviction_cap(self):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)), max_entries=4)
        for i in range(8):
            fast.process(outbound(4000 + i), 1_000 + i)
        assert fast.cache_size <= 4
        assert fast.op_counters()["fastpath_evictions"] >= 1


class TestGenerationInvalidation:
    def test_new_flow_invalidates_cached_actions(self):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)))
        fast.process(outbound(4000), 1_000)
        assert fast.cache_size == 1
        # A different flow's creation bumps the generation…
        fast.process(outbound(4001), 1_001)
        # …so the first flow's entry is discarded on next consult.
        fast.process(outbound(4000), 1_002)
        counters = fast.op_counters()
        assert counters["fastpath_invalidations"] >= 1

    def test_expiry_invalidates_cached_actions(self):
        cfg = NatConfig(max_flows=64, expiration_time=10)
        fast = FastPathNat(VigNat(cfg))
        fast.process(outbound(4000), 0)
        fast.process(outbound(4000), 1)
        hits_before = fast.op_counters()["fastpath_hits"]
        assert hits_before == 1
        # Jump past expiry: the flow is gone, the cached action must not fire.
        outputs = fast.process(outbound(4000), 1_000)
        counters = fast.op_counters()
        assert counters["fastpath_invalidations"] >= 1
        assert len(outputs) == 1  # slow path re-translates (new flow)

    def test_rejuvenation_keeps_flow_alive_under_fastpath_traffic(self):
        cfg = NatConfig(max_flows=64, expiration_time=10)
        fast = FastPathNat(VigNat(cfg))
        out = fast.process(outbound(4000), 0)[0]
        external_port = out.l4.src_port
        # Sustained fast-path hits, each within the expiry window of the
        # previous; without per-hit rejuvenation the flow would expire
        # at t=11 and the reply below would be dropped.
        for t in range(5, 41, 5):
            fast.process(outbound(4000), t)
        assert fast.op_counters()["fastpath_hits"] >= 7
        replies = fast.process(inbound(external_port), 44)
        assert len(replies) == 1
        assert replies[0].ipv4.dst_ip == 0x0A000005  # 10.0.0.5

    def test_expiry_without_traffic_still_expires(self):
        cfg = NatConfig(max_flows=64, expiration_time=10)
        fast = FastPathNat(VigNat(cfg))
        out = fast.process(outbound(4000), 0)[0]
        external_port = out.l4.src_port
        # No rejuvenating traffic: the flow dies, the reply is dropped.
        assert fast.process(inbound(external_port), 1_000) == []


class TestFallThrough:
    def test_fragments_never_cached(self):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)))
        frag = outbound(4000)
        frag.ipv4.fragment_offset = 8
        assert packet_flow_key(frag) is None
        fast.process(frag, 1_000)
        fast.process(frag.clone(), 1_001)
        counters = fast.op_counters()
        assert counters["fastpath_misses"] == 2
        assert fast.cache_size == 0

    def test_icmp_never_cached(self):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)))
        icmp = outbound(4000)
        icmp.ipv4.protocol = PROTO_ICMP
        icmp.l4 = None
        assert packet_flow_key(icmp) is None
        fast.process(icmp, 1_000)
        assert fast.cache_size == 0

    def test_non_ipv4_never_cached(self):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)))
        arp = outbound(4000)
        arp.eth.ethertype = 0x0806
        assert packet_flow_key(arp) is None


class TestZeroUdpChecksumRegression:
    """RFC 768: checksum 0 means "no checksum" and must stay 0."""

    def _zero_checksum_outbound(self):
        packet = outbound(4000)
        packet.l4.checksum = 0
        return packet

    def test_stays_zero_on_slow_and_fast_path(self):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)))
        first = fast.process(self._zero_checksum_outbound(), 1_000)[0]
        assert first.l4.checksum == 0  # slow path (the learn miss)
        second = fast.process(self._zero_checksum_outbound(), 1_001)[0]
        assert second.l4.checksum == 0  # fast path (the cache hit)
        assert fast.op_counters()["fastpath_hits"] == 1
        assert first.wire_bytes() == second.wire_bytes()

    def test_raw_path_preserves_zero_checksum(self):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)))
        frame = bytearray(self._zero_checksum_outbound().wire_bytes())
        first = fast.process_raw_burst([(bytearray(frame), 0)], 1_000)[0][0]
        hit = fast.process_raw_burst([(bytearray(frame), 0)], 1_001)[0][0]
        assert fast.op_counters()["fastpath_hits"] == 1
        assert first == hit
        out = Packet.from_bytes(hit[0], hit[1])
        assert out.l4.checksum == 0

    def test_unverified_nat_zero_checksum_bug_is_reproduced(self):
        """The unverified NAT's inbound path corrupts disabled checksums;
        the fast path must reproduce that bug, not fix it."""
        cfg = NatConfig(max_flows=64)
        slow = UnverifiedNat(cfg)
        fast = FastPathNat(UnverifiedNat(cfg))
        for t in (1_000, 1_001):
            packet = self._zero_checksum_outbound()
            slow_out = slow.process(packet.clone(), t)
            fast_out = fast.process(packet.clone(), t)
            assert render(fast_out) == render(slow_out)
        external_port = fast.process(self._zero_checksum_outbound(), 1_002)[0].l4.src_port
        for t in (1_003, 1_004):
            reply = inbound(external_port)
            reply.l4.checksum = 0
            slow_out = slow.process(reply.clone(), t)
            fast_out = fast.process(reply.clone(), t)
            assert render(fast_out) == render(slow_out)


class TestRawBurstPath:
    def test_raw_matches_object_path(self):
        object_nf = FastPathNat(VigNat(NatConfig(max_flows=64)))
        raw_nf = FastPathNat(VigNat(NatConfig(max_flows=64)))
        packets = [outbound(4000), outbound(4001), outbound(4000)]
        for t in (1_000, 1_001):
            object_out = object_nf.process_burst([p.clone() for p in packets], t)
            raw_out = raw_nf.process_raw_burst(
                [(bytearray(p.wire_bytes()), p.device) for p in packets], t
            )
            want = [[(p.wire_bytes(), p.device) for p in outs] for outs in object_out]
            got = [[(frame, dev) for frame, dev in outs] for outs in raw_out]
            assert got == want
        assert raw_nf.op_counters()["fastpath_hits"] >= 1

    def test_unparseable_frame_is_dropped(self):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)))
        assert fast.process_raw_burst([(bytearray(b"\x00" * 6), 0)], 1_000) == [[]]

    def test_raw_path_requires_support(self):
        fast = FastPathNat(UnverifiedNat(NatConfig(max_flows=64)))
        with pytest.raises(TypeError):
            fast.process_raw_burst([], 1_000)


class TestWarmFromRestoredState:
    """warm() rebuilds the action cache from restored flow state.

    The promoted-standby scenario: a fresh NF restores a checkpoint and
    would otherwise serve its first packet per flow from the slow path
    (a 100% miss storm exactly when latency matters most).
    """

    def _restored(self, nf_class=VigNat, flows=8, max_entries=65_536):
        cfg = NatConfig(max_flows=64)
        primary = nf_class(cfg)
        ext_of = {}
        for i in range(flows):
            (out,) = primary.process(outbound(4_000 + i), 1_000)
            ext_of[4_000 + i] = out.l4.src_port
        standby = nf_class(cfg)
        standby.restore_state(primary.checkpoint_state())
        return FastPathNat(standby, max_entries=max_entries), primary, ext_of

    def test_warm_installs_both_directions(self):
        fast, _, _ = self._restored(flows=8)
        assert fast.warm() == 16
        assert fast.cache_size == 16
        assert fast.op_counters()["fastpath_warmed"] == 16

    def test_warmed_forward_hit_matches_slow_path(self):
        fast, primary, _ = self._restored(flows=4)
        fast.warm()
        packet = outbound(4_001)
        assert render(fast.process(packet.clone(), 2_000)) == render(
            primary.process(packet.clone(), 2_000)
        )
        counters = fast.op_counters()
        assert counters["fastpath_hits"] == 1
        assert counters["fastpath_misses"] == 0
        assert counters["fastpath_learns"] == 0

    def test_warmed_reply_hit_matches_slow_path(self):
        fast, primary, ext_of = self._restored(flows=4)
        fast.warm()
        reply = inbound(ext_of[4_002])
        assert render(fast.process(reply.clone(), 2_000)) == render(
            primary.process(reply.clone(), 2_000)
        )
        assert fast.op_counters()["fastpath_hits"] == 1
        assert fast.op_counters()["fastpath_misses"] == 0

    def test_warmed_raw_path_matches_object_path(self):
        fast, _, ext_of = self._restored(flows=4)
        slow, _, _ = self._restored(flows=4)
        fast.warm()
        packets = [outbound(4_000), inbound(ext_of[4_003])]
        raw_out = fast.process_raw_burst(
            [(bytearray(p.wire_bytes()), p.device) for p in packets], 2_000
        )
        object_out = slow.process_burst([p.clone() for p in packets], 2_000)
        want = [[(p.wire_bytes(), p.device) for p in outs] for outs in object_out]
        assert [list(outs) for outs in raw_out] == want
        assert fast.op_counters()["fastpath_hits"] == 2

    def test_unverified_nat_warms_too(self):
        fast, primary, ext_of = self._restored(nf_class=UnverifiedNat, flows=4)
        assert fast.warm() == 8
        for packet in (outbound(4_000), inbound(ext_of[4_001])):
            assert render(fast.process(packet.clone(), 2_000)) == render(
                primary.process(packet.clone(), 2_000)
            )
        assert fast.op_counters()["fastpath_hits"] == 2

    def test_churn_invalidates_warmed_entries(self):
        fast, _, _ = self._restored(flows=4)
        fast.warm()
        # A brand-new flow bumps the inner generation; the warmed
        # actions must be discarded, not replayed stale.
        fast.process(outbound(4_500), 2_000)
        fast.process(outbound(4_001), 2_001)
        counters = fast.op_counters()
        assert counters["fastpath_invalidations"] >= 1

    def test_capacity_cap_truncates_warming(self):
        fast, _, _ = self._restored(flows=8, max_entries=6)
        assert fast.warm() == 6
        assert fast.cache_size == 6

    def test_nf_without_warm_hook_warms_nothing(self):
        fast = FastPathNat(NoopForwarder(0, 1))
        assert fast.warm() == 0
        assert fast.op_counters()["fastpath_warmed"] == 0


class TestNoopFastPath:
    def test_noop_hits_and_forwards(self):
        fast = FastPathNat(NoopForwarder(0, 1))
        packet = make_tcp_packet("10.0.0.1", "198.18.0.1", 99, 80, device=0)
        first = fast.process(packet.clone(), 1_000)
        second = fast.process(packet.clone(), 1_001)
        assert render(first) == render(second)
        assert first[0].device == 1
        assert fast.op_counters()["fastpath_hits"] == 1
