"""Differential testing: VigNat against the executable RFC 3022 spec.

The concrete-level counterpart of the P1 proof: hypothesis drives random
packet sequences (both directions, expiry-crossing time gaps, table
pressure) through VigNat and through the Fig. 6 decision tree, asserting
they agree packet-for-packet — same forward/drop decision, same rewritten
headers, same abstract state size.

The spec's port oracle replays whichever port VigNat allocated, and the
spec then *checks* the choice was legal (unused, in range), so the
comparison is exact without fixing an allocation policy.
"""

from hypothesis import given, settings, strategies as st

from repro.nat.config import NatConfig
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.packets.builder import make_udp_packet
from repro.spec.rfc3022 import EXTERNAL, INTERNAL, NatSpec, SpecPacket

CFG = NatConfig(max_flows=4, expiration_time=2_000_000, start_port=1000)

REMOTE_IP = 0x08080808
INTERNAL_IPS = [0x0A000001, 0x0A000002, 0x0A000003]


def _steps():
    return st.lists(
        st.tuples(
            st.sampled_from(["in", "out"]),
            st.integers(0, 5),  # flow selector
            st.integers(0, 2_500_000),  # time increment, microseconds
        ),
        min_size=1,
        max_size=30,
    )


def _spec_packet(direction, selector, spec_state, cfg):
    if direction == "out":
        src_ip = INTERNAL_IPS[selector % len(INTERNAL_IPS)]
        src_port = 4000 + selector
        return SpecPacket(
            iface=INTERNAL,
            src_ip=src_ip,
            src_port=src_port,
            dst_ip=REMOTE_IP,
            dst_port=53,
            protocol=17,
        )
    # External packet: aim at an allocated port when one exists, so the
    # sequence exercises both hits and unsolicited misses.
    ports = sorted(spec_state.allocated_ports())
    dst_port = ports[selector % len(ports)] if ports and selector % 2 == 0 else (
        cfg.start_port + selector
    )
    return SpecPacket(
        iface=EXTERNAL,
        src_ip=REMOTE_IP,
        src_port=53,
        dst_ip=cfg.external_ip,
        dst_port=dst_port,
        protocol=17,
    )


def _concrete_packet(spec_packet, cfg):
    device = (
        cfg.internal_device if spec_packet.iface == INTERNAL else cfg.external_device
    )
    return make_udp_packet(
        spec_packet.src_ip,
        spec_packet.dst_ip,
        spec_packet.src_port,
        spec_packet.dst_port,
        device=device,
    )


class TestVigNatAgainstSpec:
    @settings(max_examples=120, deadline=None)
    @given(steps=_steps())
    def test_exact_agreement(self, steps):
        nat = VigNat(CFG)
        chosen_port = {}

        def oracle(state, packet):
            return chosen_port["port"]

        spec = NatSpec(
            external_ip=CFG.external_ip,
            capacity=CFG.max_flows,
            expiration_time=CFG.expiration_time,
            port_oracle=oracle,
            start_port=CFG.start_port,
        )
        state = spec.initial_state()
        now = 0
        for direction, selector, dt in steps:
            now += dt
            spec_pkt = _spec_packet(direction, selector, state, CFG)
            concrete = _concrete_packet(spec_pkt, CFG)
            outputs = nat.process(concrete, now)
            # Feed the implementation's allocation to the spec's oracle.
            if outputs and direction == "out":
                chosen_port["port"] = outputs[0].l4.src_port
            verdict = spec.step(state, spec_pkt, now)
            state = verdict.state

            assert (len(outputs) == 1) == (verdict.sent is not None), (
                f"forward/drop mismatch at t={now}: case {verdict.case}"
            )
            if verdict.sent is not None:
                sent = verdict.sent
                out = outputs[0]
                assert out.ipv4.src_ip == sent.src_ip
                assert out.l4.src_port == sent.src_port
                assert out.ipv4.dst_ip == sent.dst_ip
                assert out.l4.dst_port == sent.dst_port
                expected_device = (
                    CFG.internal_device
                    if sent.iface == INTERNAL
                    else CFG.external_device
                )
                assert out.device == expected_device
            assert nat.flow_count() == state.size()


class TestUnverifiedDivergesFromSpec:
    """The eviction bug makes the unverified NAT observably non-conformant."""

    def test_divergence_under_table_pressure(self):
        nat = UnverifiedNat(CFG)
        # Fill the table, then offer one more flow: the spec drops it,
        # the unverified NAT forwards it (by evicting a live flow).
        for i in range(CFG.max_flows):
            nat.process(
                make_udp_packet(INTERNAL_IPS[0], REMOTE_IP, 5000 + i, 53, device=0),
                1_000,
            )
        extra = make_udp_packet(INTERNAL_IPS[0], REMOTE_IP, 9999, 53, device=0)
        outputs = nat.process(extra, 1_001)
        assert outputs, "unverified NAT forwarded where the spec drops"
        assert nat.flow_count() == CFG.max_flows  # evicted, not grown
