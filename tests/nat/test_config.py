"""NAT configuration validation."""

import pytest

from repro.nat.config import NatConfig


class TestNatConfig:
    def test_defaults_valid(self):
        cfg = NatConfig()
        assert cfg.max_flows == 65_535
        assert cfg.expiration_time == 2_000_000
        assert cfg.start_port + cfg.max_flows - 1 <= 0xFFFF

    def test_devices_must_differ(self):
        with pytest.raises(ValueError):
            NatConfig(internal_device=1, external_device=1)

    def test_positive_capacity(self):
        with pytest.raises(ValueError):
            NatConfig(max_flows=0)

    def test_positive_expiration(self):
        with pytest.raises(ValueError):
            NatConfig(expiration_time=0)

    def test_port_range_fits_16_bits(self):
        with pytest.raises(ValueError):
            NatConfig(start_port=60_000, max_flows=10_000)

    def test_custom_values(self):
        cfg = NatConfig(max_flows=100, expiration_time=5_000_000, start_port=2000)
        assert cfg.max_flows == 100

    def test_frozen(self):
        cfg = NatConfig()
        with pytest.raises(Exception):
            cfg.max_flows = 1  # type: ignore[misc]
