"""NAT configuration validation, partitioning, and the legacy shim."""

import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.nat.config import NatConfig
from repro.nat.netfilter import NetfilterNat
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat


class TestNatConfig:
    def test_defaults_valid(self):
        cfg = NatConfig()
        assert cfg.max_flows == 65_535
        assert cfg.expiration_time == 2_000_000
        assert cfg.start_port + cfg.max_flows - 1 <= 0xFFFF

    def test_devices_must_differ(self):
        with pytest.raises(ValueError):
            NatConfig(internal_device=1, external_device=1)

    def test_positive_capacity(self):
        with pytest.raises(ValueError):
            NatConfig(max_flows=0)

    def test_positive_expiration(self):
        with pytest.raises(ValueError):
            NatConfig(expiration_time=0)

    def test_port_range_fits_16_bits(self):
        with pytest.raises(ValueError):
            NatConfig(start_port=60_000, max_flows=10_000)

    def test_custom_values(self):
        cfg = NatConfig(max_flows=100, expiration_time=5_000_000, start_port=2000)
        assert cfg.max_flows == 100

    def test_frozen(self):
        cfg = NatConfig()
        with pytest.raises(Exception):
            cfg.max_flows = 1  # type: ignore[misc]

    def test_port_range_helpers(self):
        cfg = NatConfig(max_flows=10, start_port=1000)
        assert cfg.end_port == 1009
        assert list(cfg.port_range()) == list(range(1000, 1010))
        assert cfg.owns_port(1000) and cfg.owns_port(1009)
        assert not cfg.owns_port(999) and not cfg.owns_port(1010)


class TestPartition:
    """partition(n) must yield a true partition of the port range —
    disjoint, exhaustive, ordered — for arbitrary sizes and counts."""

    @settings(max_examples=200, deadline=None)
    @given(
        max_flows=st.integers(min_value=1, max_value=4096),
        start_port=st.integers(min_value=1, max_value=60_000),
        workers=st.integers(min_value=1, max_value=64),
    )
    def test_partition_is_disjoint_and_exhaustive(
        self, max_flows, start_port, workers
    ):
        if start_port + max_flows - 1 > 0xFFFF or workers > max_flows:
            return
        cfg = NatConfig(max_flows=max_flows, start_port=start_port)
        shards = cfg.partition(workers)
        assert len(shards) == workers

        covered = []
        for shard in shards:
            assert shard.external_ip == cfg.external_ip
            assert shard.internal_device == cfg.internal_device
            assert shard.external_device == cfg.external_device
            assert shard.expiration_time == cfg.expiration_time
            covered.extend(shard.port_range())
        # Disjoint (no duplicates), exhaustive (exactly the parent range),
        # ordered (worker i's slice precedes worker i+1's).
        assert covered == list(cfg.port_range())
        assert sum(shard.max_flows for shard in shards) == cfg.max_flows

    @settings(max_examples=100, deadline=None)
    @given(
        port=st.integers(min_value=1000, max_value=1999),
        workers=st.integers(min_value=1, max_value=16),
    )
    def test_every_port_has_exactly_one_owner(self, port, workers):
        cfg = NatConfig(max_flows=1000, start_port=1000)
        owners = [
            w for w, shard in enumerate(cfg.partition(workers))
            if shard.owns_port(port)
        ]
        assert len(owners) == 1

    def test_partition_of_one_is_the_config_itself(self):
        cfg = NatConfig(max_flows=100, start_port=1000)
        (only,) = cfg.partition(1)
        assert only == cfg

    def test_rejects_bad_worker_counts(self):
        cfg = NatConfig(max_flows=4, start_port=1000)
        with pytest.raises(ValueError):
            cfg.partition(0)
        with pytest.raises(ValueError):
            cfg.partition(5)  # more workers than ports

    def test_rejects_port_range_escaping_16_bits(self):
        # ``__post_init__`` validates constructor input, but a config
        # can reach partition() holding a corrupt range (deserialized
        # or mutated around the frozen dataclass). The old code split
        # such a range into shards whose tail ports no packet can
        # carry; it must refuse instead.
        cfg = NatConfig(max_flows=100, start_port=1000)
        object.__setattr__(cfg, "max_flows", 70_000)
        assert cfg.end_port > 0xFFFF
        with pytest.raises(ValueError, match="does not fit the valid port space"):
            cfg.partition(4)

    def test_rejects_nonpositive_start_port(self):
        cfg = NatConfig(max_flows=100, start_port=1000)
        object.__setattr__(cfg, "start_port", 0)
        with pytest.raises(ValueError, match="does not fit the valid port space"):
            cfg.partition(2)


class TestLegacyShim:
    """The pre-redesign call forms keep working, with a warning."""

    def test_positional_construction_warns(self):
        with pytest.deprecated_call():
            cfg = NatConfig(
                NatConfig().external_ip, 0, 1, 100, 5_000_000, 2000
            )
        assert cfg.max_flows == 100
        assert cfg.start_port == 2000

    def test_keyword_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            NatConfig(max_flows=100, start_port=2000)

    @pytest.mark.parametrize("nf_class", [VigNat, UnverifiedNat, NetfilterNat])
    def test_legacy_nf_kwargs_warn_and_apply(self, nf_class):
        with pytest.deprecated_call(match=nf_class.__name__):
            nf = nf_class(max_flows=50, start_port=3000)
        assert nf.config.max_flows == 50
        assert nf.config.start_port == 3000

    def test_nf_config_object_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            nf = VigNat(NatConfig(max_flows=50))
        assert nf.config.max_flows == 50

    def test_config_and_legacy_kwargs_conflict(self):
        with pytest.raises(TypeError):
            VigNat(NatConfig(), max_flows=50)

    def test_unknown_legacy_field_rejected(self):
        with pytest.raises(TypeError):
            VigNat(bogus_field=1)
