"""No-op forwarder and the §3 discard NF."""

import pytest

from repro.nat.discard import DISCARD_PORT, DiscardNF, packet_constraints
from repro.nat.noop import NoopForwarder
from repro.packets.builder import make_udp_packet


def pkt(dport, device=0):
    return make_udp_packet("10.0.0.1", "10.0.0.2", 1234, dport, device=device)


class TestNoopForwarder:
    def test_forwards_between_devices(self):
        nf = NoopForwarder(0, 1)
        out = nf.process(pkt(80, device=0), 0)
        assert len(out) == 1 and out[0].device == 1
        back = nf.process(pkt(80, device=1), 0)
        assert back[0].device == 0

    def test_packet_untouched(self):
        nf = NoopForwarder(0, 1)
        original = pkt(80)
        out = nf.process(original, 0)[0]
        assert out.ipv4.src_ip == original.ipv4.src_ip
        assert out.l4.dst_port == original.l4.dst_port

    def test_unknown_device_dropped(self):
        nf = NoopForwarder(0, 1)
        assert nf.process(pkt(80, device=5), 0) == []

    def test_devices_must_differ(self):
        with pytest.raises(ValueError):
            NoopForwarder(1, 1)


class TestDiscardNF:
    def test_forwards_non_discard_traffic(self):
        nf = DiscardNF()
        out = nf.process(pkt(80), 0)
        assert len(out) == 1
        assert out[0].l4.dst_port == 80
        assert out[0].device == nf.out_device

    def test_discards_port_9(self):
        nf = DiscardNF()
        assert nf.process(pkt(DISCARD_PORT), 0) == []
        assert nf.op_counters()["discarded"] == 1

    def test_semantic_property_on_mixed_stream(self):
        """No emitted packet targets port 9, ever (the §3 property)."""
        nf = DiscardNF()
        emitted = []
        for i in range(100):
            dport = 9 if i % 3 == 0 else 80 + i
            emitted.extend(nf.process(pkt(dport), i))
        assert emitted
        assert all(p.l4.dst_port != DISCARD_PORT for p in emitted)

    def test_ring_buffers_bursts(self):
        nf = DiscardNF(capacity=4)
        # Push without draining: each iteration pops one and pushes one,
        # so the ring stays near-empty; verify the invariant holds.
        for i in range(10):
            nf.process(pkt(100 + i), i)
        assert nf.op_counters()["buffered"] <= 4

    def test_packet_constraints_predicate(self):
        assert packet_constraints(pkt(80))
        assert not packet_constraints(pkt(9))
