"""The NetFilter-style NAT: conntrack behaviour and translation parity."""

from repro.nat.config import NatConfig
from repro.nat.netfilter import ConntrackState, NetfilterNat
from repro.nat.vignat import VigNat
from repro.packets.addresses import ip_to_int
from repro.packets.builder import make_tcp_packet, make_udp_packet

CFG = NatConfig(max_flows=32, expiration_time=2_000_000, start_port=1000)


def outbound(sport=4000, maker=make_udp_packet):
    return maker("10.0.0.5", "8.8.8.8", sport, 53, device=0)


class TestConntrack:
    def test_new_connection_tracked(self):
        nat = NetfilterNat(CFG)
        nat.process(outbound(), 1_000)
        assert nat.flow_count() == 1
        ct = next(iter(nat._lru.values()))
        assert ct.state is ConntrackState.NEW

    def test_second_outbound_establishes(self):
        nat = NetfilterNat(CFG)
        nat.process(outbound(), 1_000)
        nat.process(outbound(), 2_000)
        ct = next(iter(nat._lru.values()))
        assert ct.state is ConntrackState.ESTABLISHED

    def test_tcp_reply_assures(self):
        nat = NetfilterNat(CFG)
        out = nat.process(outbound(maker=make_tcp_packet), 1_000)[0]
        reply = make_tcp_packet("8.8.8.8", CFG.external_ip, 53, out.l4.src_port, device=1)
        nat.process(reply, 2_000)
        ct = next(iter(nat._lru.values()))
        assert ct.state is ConntrackState.ASSURED

    def test_expiration_gc(self):
        nat = NetfilterNat(CFG)
        nat.process(outbound(), 0)
        nat.process(outbound(sport=5000), CFG.expiration_time + 1)
        assert nat.flow_count() == 1

    def test_full_table_drops(self):
        cfg = NatConfig(max_flows=2, expiration_time=60_000_000, start_port=1000)
        nat = NetfilterNat(cfg)
        assert nat.process(outbound(sport=1), 1_000)
        assert nat.process(outbound(sport=2), 1_000)
        assert nat.process(outbound(sport=3), 1_000) == []

    def test_unsolicited_dropped(self):
        nat = NetfilterNat(CFG)
        unsolicited = make_udp_packet("8.8.8.8", CFG.external_ip, 53, 1001, device=1)
        assert nat.process(unsolicited, 1_000) == []


class TestHookCosts:
    def test_hook_traversals_counted(self):
        nat = NetfilterNat(CFG)
        nat.process(outbound(), 1_000)
        assert nat.op_counters()["hook_traversals"] == NetfilterNat.HOOKS_PER_PACKET

    def test_checksum_bytes_counted_for_forwarded(self):
        nat = NetfilterNat(CFG)
        nat.process(outbound(), 1_000)
        assert nat.op_counters()["checksum_bytes"] > 0

    def test_dropped_packets_skip_checksum(self):
        nat = NetfilterNat(CFG)
        unsolicited = make_udp_packet("8.8.8.8", CFG.external_ip, 53, 1001, device=1)
        nat.process(unsolicited, 1_000)
        assert nat.op_counters()["checksum_bytes"] == 0


class TestTranslationParity:
    """On conforming traffic the Linux NAT translates like VigNat."""

    def test_byte_identical_translations(self):
        linux = NetfilterNat(CFG)
        vig = VigNat(CFG)
        seq = [
            outbound(sport=4000),
            outbound(sport=4001),
            outbound(sport=4000),
        ]
        for now, packet in enumerate(seq, start=1):
            a = linux.process(packet.clone(), now * 1000)
            b = vig.process(packet.clone(), now * 1000)
            assert len(a) == len(b) == 1
            # Port allocation policy may differ; everything else matches.
            assert a[0].ipv4.src_ip == b[0].ipv4.src_ip
            assert a[0].ipv4.dst_ip == b[0].ipv4.dst_ip
            assert a[0].l4.dst_port == b[0].l4.dst_port
            assert a[0].device == b[0].device

    def test_reply_parity(self):
        linux = NetfilterNat(CFG)
        out = linux.process(outbound(sport=4500), 1_000)[0]
        reply = make_udp_packet("8.8.8.8", CFG.external_ip, 53, out.l4.src_port, device=1)
        back = linux.process(reply, 2_000)[0]
        assert back.ipv4.dst_ip == ip_to_int("10.0.0.5")
        assert back.l4.dst_port == 4500
        assert back.l4_checksum_valid()
        assert back.ipv4.header_checksum_valid()
