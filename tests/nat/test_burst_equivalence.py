"""Burst entry points: same translations as the single-packet path,
amortized expiry, and the monotonic clock clamp (crash-freedom)."""

import pytest

from repro.nat.config import NatConfig
from repro.nat.netfilter import NetfilterNat
from repro.nat.noop import NoopForwarder
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.packets.builder import make_udp_packet

CFG = NatConfig(max_flows=64)


def outbound(sport):
    return make_udp_packet("10.0.0.5", "8.8.8.8", sport, 53, device=0)


def inbound(dport):
    return make_udp_packet("8.8.8.8", CFG.external_ip, 53, dport, device=1)


def mixed_traffic():
    packets = [outbound(4000 + i) for i in range(6)]
    packets.append(make_udp_packet("10.0.0.5", "8.8.8.8", 4000, 53, device=7))
    return packets


def render(outputs):
    return [(p.device, p.to_bytes()) for p in outputs]


NF_FACTORIES = [
    ("noop", lambda: NoopForwarder(0, 1)),
    ("unverified", lambda: UnverifiedNat(NatConfig(max_flows=64))),
    ("verified", lambda: VigNat(NatConfig(max_flows=64))),
    ("netfilter", lambda: NetfilterNat(NatConfig(max_flows=64))),
]


class TestBurstMatchesSinglePacketPath:
    @pytest.mark.parametrize("name,factory", NF_FACTORIES, ids=[n for n, _ in NF_FACTORIES])
    def test_same_outputs_as_process(self, name, factory):
        burst_nf, single_nf = factory(), factory()
        packets = mixed_traffic()
        burst_out = burst_nf.process_burst([p.clone() for p in packets], 1_000)
        single_out = [single_nf.process(p.clone(), 1_000) for p in packets]
        assert len(burst_out) == len(packets)
        for got, want in zip(burst_out, single_out):
            assert render(got) == render(want)

    @pytest.mark.parametrize("name,factory", NF_FACTORIES, ids=[n for n, _ in NF_FACTORIES])
    def test_burst_counters_surface(self, name, factory):
        nf = factory()
        nf.process_burst([outbound(4000), outbound(4001)], 1_000)
        counters = nf.op_counters()
        assert counters["bursts"] == 1
        assert counters["burst_packets"] == 2

    def test_empty_burst(self):
        nat = VigNat(NatConfig(max_flows=64))
        assert nat.process_burst([], 1_000) == []

    def test_reply_translation_in_burst(self):
        nat = VigNat(NatConfig(max_flows=64))
        [out] = nat.process_burst([outbound(4000)], 1_000)[0]
        assert out.device == 1
        [back] = nat.process_burst([inbound(out.l4.src_port)], 2_000)[0]
        assert back.device == 0
        assert back.ipv4.dst_ip == 0x0A000005  # 10.0.0.5
        assert back.l4.dst_port == 4000


class TestAmortizedExpiry:
    def test_vignat_scans_once_per_burst(self):
        nat = VigNat(NatConfig(max_flows=64))
        nat.process_burst([outbound(4000 + i) for i in range(5)], 1_000)
        assert nat.op_counters()["expiry_scans_amortized"] == 4

    def test_vignat_single_packet_path_still_scans_every_packet(self):
        nat = VigNat(NatConfig(max_flows=64, expiration_time=100))
        nat.process(outbound(4000), 1_000)
        nat.process(outbound(4001), 10_000)  # expires the first flow
        assert nat.op_counters()["expired"] == 1
        assert nat.op_counters()["expiry_scans_amortized"] == 0

    def test_expiry_still_runs_between_bursts(self):
        cfg = NatConfig(max_flows=64, expiration_time=100)
        nat = VigNat(cfg)
        nat.process_burst([outbound(4000)], 1_000)
        assert nat.flow_count() == 1
        nat.process_burst([outbound(4001)], 10_000)
        assert nat.op_counters()["expired"] == 1  # first flow aged out

    def test_unverified_and_netfilter_amortize(self):
        for factory in (
            lambda: UnverifiedNat(NatConfig(max_flows=64)),
            lambda: NetfilterNat(NatConfig(max_flows=64)),
        ):
            nf = factory()
            nf.process_burst([outbound(4000 + i) for i in range(4)], 1_000)
            assert nf.op_counters()["expiry_scans_amortized"] == 3


class TestClockRegression:
    """Regression: a backwards timestamp must not crash the verified NAT.

    Before the clamp, a packet timestamped earlier than the chain's
    newest entry made ``DoubleChain._guard_time`` raise
    ``TimeRegression`` from inside ``process()`` — the verified NAT
    crashing on its data path, against the P2 crash-freedom claim.
    """

    def test_regressing_clock_forwards_instead_of_raising(self):
        nat = VigNat(NatConfig(max_flows=64))
        assert nat.process(outbound(4000), 100_000)  # chain newest = 100000
        outputs = nat.process(outbound(4001), 50)  # clock ran backwards
        assert len(outputs) == 1  # forwarded, not crashed
        assert nat.op_counters()["clock_clamped"] == 1

    def test_regressing_clock_in_burst(self):
        nat = VigNat(NatConfig(max_flows=64))
        nat.process_burst([outbound(4000)], 100_000)
        results = nat.process_burst([outbound(4001), outbound(4002)], 99_000)
        assert all(len(out) == 1 for out in results)
        assert nat.op_counters()["clock_clamped"] == 1

    def test_rejuvenation_with_stale_clock(self):
        nat = VigNat(NatConfig(max_flows=64))
        nat.process(outbound(4000), 100_000)
        # Same flow again with a stale clock: rejuvenate, don't crash.
        outputs = nat.process(outbound(4000), 90_000)
        assert len(outputs) == 1

    def test_clock_resumes_after_clamp(self):
        nat = VigNat(NatConfig(max_flows=64))
        nat.process(outbound(4000), 100_000)
        nat.process(outbound(4001), 50)
        assert nat.process(outbound(4002), 200_000)
        assert nat.op_counters()["clock_clamped"] == 1
