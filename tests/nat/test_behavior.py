"""RFC 4787 behaviour classification — the STUN-style probe tests.

Each test performs the standard probes (same internal endpoint to two
remote endpoints; inbound from third parties) and checks the NAT
exhibits exactly the configured behaviour. The final class shows VigNat
sits at the strictest corner of the matrix (APDM + APDF).
"""


from repro.nat.behavior import (
    BehavioralNat,
    FilteringBehavior,
    MappingBehavior,
)
from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.packets.addresses import ip_to_int
from repro.packets.builder import make_udp_packet

CFG = NatConfig(max_flows=64, expiration_time=60_000_000, start_port=1000)

HOST = "10.0.0.5"
REMOTE_1 = "198.51.100.1"
REMOTE_2 = "198.51.100.2"


def probe(nat, dst_ip, dst_port, sport=4000, now=1_000):
    """Outbound probe; returns the external port the NAT chose."""
    packet = make_udp_packet(HOST, dst_ip, sport, dst_port, device=0)
    out = nat.process(packet, now)
    assert out, "probe unexpectedly dropped"
    return out[0].l4.src_port


def inbound(nat, src_ip, src_port, ext_port, now=2_000):
    packet = make_udp_packet(src_ip, CFG.external_ip, src_port, ext_port, device=1)
    return nat.process(packet, now)


class TestMappingBehaviors:
    def test_endpoint_independent_mapping_reuses_port(self):
        nat = BehavioralNat(CFG, mapping=MappingBehavior.ENDPOINT_INDEPENDENT)
        port_1 = probe(nat, REMOTE_1, 80)
        port_2 = probe(nat, REMOTE_2, 80)
        port_3 = probe(nat, REMOTE_1, 8080)
        assert port_1 == port_2 == port_3  # one mapping per internal endpoint
        assert nat.mapping_count() == 1

    def test_address_dependent_mapping(self):
        nat = BehavioralNat(CFG, mapping=MappingBehavior.ADDRESS_DEPENDENT)
        port_1 = probe(nat, REMOTE_1, 80)
        port_1b = probe(nat, REMOTE_1, 8080)  # same remote address
        port_2 = probe(nat, REMOTE_2, 80)  # different remote address
        assert port_1 == port_1b
        assert port_1 != port_2

    def test_address_and_port_dependent_mapping(self):
        nat = BehavioralNat(
            CFG, mapping=MappingBehavior.ADDRESS_AND_PORT_DEPENDENT
        )
        port_1 = probe(nat, REMOTE_1, 80)
        port_1b = probe(nat, REMOTE_1, 8080)
        assert port_1 != port_1b  # every 5-tuple gets its own mapping


class TestFilteringBehaviors:
    def _connected_nat(self, filtering):
        nat = BehavioralNat(
            CFG,
            mapping=MappingBehavior.ENDPOINT_INDEPENDENT,
            filtering=filtering,
        )
        ext_port = probe(nat, REMOTE_1, 80)
        return nat, ext_port

    def test_endpoint_independent_filtering_full_cone(self):
        nat, ext_port = self._connected_nat(FilteringBehavior.ENDPOINT_INDEPENDENT)
        # Anyone who learns the port can reach the host.
        assert inbound(nat, REMOTE_2, 9999, ext_port)

    def test_address_dependent_filtering(self):
        nat, ext_port = self._connected_nat(FilteringBehavior.ADDRESS_DEPENDENT)
        assert inbound(nat, REMOTE_1, 9999, ext_port)  # contacted address: any port
        assert not inbound(nat, REMOTE_2, 80, ext_port)  # uncontacted address

    def test_address_and_port_dependent_filtering(self):
        nat, ext_port = self._connected_nat(
            FilteringBehavior.ADDRESS_AND_PORT_DEPENDENT
        )
        assert inbound(nat, REMOTE_1, 80, ext_port)  # the exact endpoint
        assert not inbound(nat, REMOTE_1, 9999, ext_port)  # same addr, other port
        assert not inbound(nat, REMOTE_2, 80, ext_port)

    def test_delivery_rewrites_to_internal_host(self):
        nat, ext_port = self._connected_nat(FilteringBehavior.ENDPOINT_INDEPENDENT)
        back = inbound(nat, REMOTE_1, 80, ext_port)[0]
        assert back.ipv4.dst_ip == ip_to_int(HOST)
        assert back.l4.dst_port == 4000


class TestHairpinning:
    def test_internal_hosts_reach_each_other_via_external_address(self):
        nat = BehavioralNat(CFG, hairpinning=True)
        # Host B opens a mapping first.
        b_out = nat.process(
            make_udp_packet("10.0.0.6", REMOTE_1, 5000, 80, device=0), 1_000
        )[0]
        b_ext_port = b_out.l4.src_port
        # Host A sends to B's *external* address/port from inside.
        hairpin = make_udp_packet(HOST, CFG.external_ip, 4000, b_ext_port, device=0)
        delivered = nat.process(hairpin, 2_000)
        assert len(delivered) == 1
        out = delivered[0]
        assert out.device == CFG.internal_device
        assert out.ipv4.dst_ip == ip_to_int("10.0.0.6")
        assert out.l4.dst_port == 5000
        # "External source" flavour: B sees A's external mapping.
        assert out.ipv4.src_ip == CFG.external_ip

    def test_hairpinning_disabled_is_not_delivered_internally(self):
        """Without hairpin support the packet leaves on the external
        side (towards the upstream router) instead of reaching the
        internal target — the behaviour RFC 4787 REQ-9 exists to fix."""
        nat = BehavioralNat(CFG, hairpinning=False)
        nat.process(make_udp_packet("10.0.0.6", REMOTE_1, 5000, 80, device=0), 1_000)
        hairpin = make_udp_packet(HOST, CFG.external_ip, 4000, 1000, device=0)
        out = nat.process(hairpin, 2_000)
        assert all(p.device == CFG.external_device for p in out)

    def test_hairpin_to_unmapped_port_drops(self):
        nat = BehavioralNat(CFG, hairpinning=True)
        hairpin = make_udp_packet(HOST, CFG.external_ip, 4000, 1234, device=0)
        assert nat.process(hairpin, 1_000) == []


class TestExpiry:
    def test_mappings_expire(self):
        cfg = NatConfig(max_flows=8, expiration_time=1_000_000, start_port=1000)
        nat = BehavioralNat(cfg)
        ext_port = probe(nat, REMOTE_1, 80, now=1_000)
        late = 1_000 + cfg.expiration_time + 1
        assert not inbound(nat, REMOTE_1, 80, ext_port, now=late)
        assert nat.mapping_count() == 0

    def test_table_full_drops(self):
        cfg = NatConfig(max_flows=2, expiration_time=60_000_000, start_port=1000)
        nat = BehavioralNat(cfg, mapping=MappingBehavior.ENDPOINT_INDEPENDENT)
        probe(nat, REMOTE_1, 80, sport=1)
        probe(nat, REMOTE_1, 80, sport=2)
        packet = make_udp_packet(HOST, REMOTE_1, 3, 80, device=0)
        assert nat.process(packet, 1_000) == []


class TestVigNatClassification:
    """VigNat behaves exactly like the APDM+APDF corner of the matrix."""

    def test_vignat_is_apdm(self):
        vig = VigNat(CFG)
        p1 = vig.process(make_udp_packet(HOST, REMOTE_1, 4000, 80, device=0), 1_000)[0]
        p2 = vig.process(make_udp_packet(HOST, REMOTE_1, 4000, 8080, device=0), 1_000)[0]
        assert p1.l4.src_port != p2.l4.src_port  # new mapping per 5-tuple

    def test_vignat_is_apdf(self):
        vig = VigNat(CFG)
        out = vig.process(make_udp_packet(HOST, REMOTE_1, 4000, 80, device=0), 1_000)[0]
        ext_port = out.l4.src_port
        ok = make_udp_packet(REMOTE_1, CFG.external_ip, 80, ext_port, device=1)
        wrong_port = make_udp_packet(REMOTE_1, CFG.external_ip, 81, ext_port, device=1)
        wrong_host = make_udp_packet(REMOTE_2, CFG.external_ip, 80, ext_port, device=1)
        assert vig.process(ok, 2_000)
        assert not vig.process(wrong_port, 2_001)
        assert not vig.process(wrong_host, 2_002)

    def test_matrix_agreement_with_behavioral_nat(self):
        """BehavioralNat at APDM+APDF forwards/drops exactly like VigNat."""
        strict = BehavioralNat(
            CFG,
            mapping=MappingBehavior.ADDRESS_AND_PORT_DEPENDENT,
            filtering=FilteringBehavior.ADDRESS_AND_PORT_DEPENDENT,
            hairpinning=False,
        )
        vig = VigNat(CFG)
        sequence = [
            make_udp_packet(HOST, REMOTE_1, 4000, 80, device=0),
            make_udp_packet(HOST, REMOTE_1, 4000, 8080, device=0),
            make_udp_packet(REMOTE_1, CFG.external_ip, 80, 1000, device=1),
            make_udp_packet(REMOTE_2, CFG.external_ip, 80, 1000, device=1),
            make_udp_packet(REMOTE_1, CFG.external_ip, 81, 1001, device=1),
        ]
        for now, packet in enumerate(sequence, start=1):
            a = strict.process(packet.clone(), now * 1_000)
            b = vig.process(packet.clone(), now * 1_000)
            assert (len(a) > 0) == (len(b) > 0), f"divergence on packet {now}"
