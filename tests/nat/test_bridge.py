"""The verified MAC-learning bridge: concrete behaviour and its proof."""

from hypothesis import given, settings, strategies as st

from repro.nat.bridge import BROADCAST_MAC, BridgeConfig, VigBridge
from repro.packets.addresses import mac_to_bytes
from repro.packets.headers import EthernetHeader, Packet

CFG = BridgeConfig(capacity=8, aging_time=1_000_000)

HOST_A = int.from_bytes(mac_to_bytes("02:00:00:00:00:0a"), "big")
HOST_B = int.from_bytes(mac_to_bytes("02:00:00:00:00:0b"), "big")
HOST_C = int.from_bytes(mac_to_bytes("02:00:00:00:00:0c"), "big")


def frame(src: int, dst: int, device: int) -> Packet:
    return Packet(
        eth=EthernetHeader(
            src=src.to_bytes(6, "big"), dst=dst.to_bytes(6, "big")
        ),
        payload=b"l2-payload",
        device=device,
    )


class TestLearning:
    def test_source_learned_on_arrival_port(self):
        bridge = VigBridge(CFG)
        bridge.process(frame(HOST_A, HOST_B, device=0), 1_000)
        assert bridge.port_of(HOST_A) == 0
        assert bridge.station_count() == 1

    def test_station_move_rebinds_port(self):
        bridge = VigBridge(CFG)
        bridge.process(frame(HOST_A, HOST_B, device=0), 1_000)
        bridge.process(frame(HOST_A, HOST_B, device=1), 2_000)
        assert bridge.port_of(HOST_A) == 1
        assert bridge.station_count() == 1

    def test_broadcast_source_never_learned(self):
        bridge = VigBridge(CFG)
        bridge.process(frame(BROADCAST_MAC, HOST_B, device=0), 1_000)
        assert bridge.station_count() == 0

    def test_full_table_stops_learning_but_not_forwarding(self):
        bridge = VigBridge(CFG)
        for i in range(CFG.capacity):
            bridge.process(frame(0x10_0000 + i, HOST_B, device=0), 1_000)
        out = bridge.process(frame(HOST_C, HOST_B, device=0), 1_001)
        assert out, "unlearned stations still get flooded"
        assert bridge.station_count() == CFG.capacity
        assert bridge.port_of(HOST_C) is None


class TestForwarding:
    def test_unknown_destination_flooded_to_other_port(self):
        bridge = VigBridge(CFG)
        out = bridge.process(frame(HOST_A, HOST_B, device=0), 1_000)
        assert len(out) == 1 and out[0].device == 1

    def test_known_destination_forwarded(self):
        bridge = VigBridge(CFG)
        bridge.process(frame(HOST_B, HOST_A, device=1), 1_000)  # learn B@1
        out = bridge.process(frame(HOST_A, HOST_B, device=0), 2_000)
        assert len(out) == 1 and out[0].device == 1

    def test_same_segment_filtered(self):
        """Both stations on port 0: the bridge must not echo the frame."""
        bridge = VigBridge(CFG)
        bridge.process(frame(HOST_B, HOST_A, device=0), 1_000)  # learn B@0
        out = bridge.process(frame(HOST_A, HOST_B, device=0), 2_000)
        assert out == []

    def test_broadcast_always_forwarded(self):
        bridge = VigBridge(CFG)
        out = bridge.process(frame(HOST_A, BROADCAST_MAC, device=0), 1_000)
        assert len(out) == 1 and out[0].device == 1

    def test_frame_bytes_untouched(self):
        bridge = VigBridge(CFG)
        original = frame(HOST_A, HOST_B, device=0)
        out = bridge.process(original, 1_000)[0]
        assert out.eth.src == original.eth.src
        assert out.eth.dst == original.eth.dst
        assert out.payload == original.payload

    def test_unknown_port_dropped(self):
        bridge = VigBridge(CFG)
        assert bridge.process(frame(HOST_A, HOST_B, device=7), 1_000) == []


class TestAging:
    def test_idle_entry_expires(self):
        bridge = VigBridge(CFG)
        bridge.process(frame(HOST_B, HOST_A, device=0), 1_000)
        late = 1_000 + CFG.aging_time + 1
        # After aging, B is unknown again: a frame to B on port 0 floods
        # instead of being filtered.
        out = bridge.process(frame(HOST_A, HOST_B, device=0), late)
        assert len(out) == 1
        assert bridge.port_of(HOST_B) is None

    def test_traffic_refreshes_entry(self):
        bridge = VigBridge(CFG)
        bridge.process(frame(HOST_B, HOST_A, device=0), 0)
        bridge.process(frame(HOST_B, HOST_A, device=0), CFG.aging_time // 2)
        still_alive = CFG.aging_time // 2 + CFG.aging_time - 1
        bridge.process(frame(HOST_C, HOST_A, device=1), still_alive)
        assert bridge.port_of(HOST_B) == 0


@settings(max_examples=60, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.sampled_from([HOST_A, HOST_B, HOST_C]),
            st.sampled_from([HOST_A, HOST_B, HOST_C, BROADCAST_MAC]),
            st.integers(0, 1),
            st.integers(0, 600_000),
        ),
        max_size=25,
    )
)
def test_differential_against_shadow_model(steps):
    """The bridge agrees with a dictionary shadow model of 802.1D."""
    bridge = VigBridge(CFG)
    shadow = {}  # mac -> (port, last_seen)
    now = 0
    for src, dst, device, dt in steps:
        now += dt
        threshold = now - CFG.aging_time
        shadow = {m: v for m, v in shadow.items() if v[1] > threshold}
        if src != BROADCAST_MAC and (src in shadow or len(shadow) < CFG.capacity):
            shadow[src] = (device, now)
        expect_filter = (
            dst != BROADCAST_MAC and dst in shadow and shadow[dst][0] == device
        )
        out = bridge.process(frame(src, dst, device), now)
        assert (out == []) == expect_filter
        if out:
            assert out[0].device == 1 - device
        assert bridge.station_count() == len(shadow)


class TestBridgeVerification:
    def test_pipeline_verifies_bridge(self):
        from repro.nat.bridge import BridgeConfig as Cfg
        from repro.verif.engine import ExhaustiveSymbolicEngine
        from repro.verif.nf_env_bridge import BridgeSemantics, bridge_symbolic_body
        from repro.verif.validator import Validator

        cfg = Cfg()
        result = ExhaustiveSymbolicEngine().explore(bridge_symbolic_body(cfg))
        report = Validator(BridgeSemantics(cfg)).validate(result, "VigBridge")
        assert report.verified, report.render()
        assert result.stats.paths >= 30  # richer branching than the NAT

    def test_hub_mutant_fails_filtering(self):
        """A 'bridge' that never filters is rejected by P1."""
        from repro.nat.bridge import BridgeConfig as Cfg
        from repro.verif.engine import ExhaustiveSymbolicEngine
        from repro.verif.nf_env_bridge import (
            BridgeSemantics,
            SymbolicBridgeEnv,
            bridge_symbolic_body,
        )
        from repro.verif.validator import Validator

        cfg = Cfg()

        def body(ctx):
            env = SymbolicBridgeEnv(ctx, cfg)
            frame_obj = env.receive()
            now = env.models.current_time()
            if frame_obj is None:
                return
            # BUG: a hub — floods everything, learns nothing, filters
            # nothing, forwards even from unknown ports.
            env.forward(frame_obj, device=cfg.device_b)

        result = ExhaustiveSymbolicEngine().explore(body)
        report = Validator(BridgeSemantics(cfg)).validate(result, "hub")
        assert not report.p1.proven

    def test_wrong_port_learning_mutant_fails(self):
        """Learning the destination port instead of the arrival port."""
        from repro.nat.bridge import BROADCAST_MAC as BC, BridgeConfig as Cfg
        from repro.verif.engine import ExhaustiveSymbolicEngine
        from repro.verif.nf_env_bridge import BridgeSemantics, SymbolicBridgeEnv
        from repro.verif.validator import Validator

        cfg = Cfg()

        def body(ctx):
            env = SymbolicBridgeEnv(ctx, cfg)
            now = env.current_time()
            frame_obj = env.receive()
            if frame_obj is None:
                return
            if frame_obj.device == cfg.device_a:
                out = cfg.device_b
            elif frame_obj.device == cfg.device_b:
                out = cfg.device_a
            else:
                env.drop(frame_obj)
                return
            if frame_obj.src_mac != BC:
                known = env.table_get(frame_obj.src_mac)
                if known is None:
                    if env.table_has_room():
                        # BUG: binds the OUTPUT port, poisoning the table.
                        env.table_learn_new(frame_obj.src_mac, out, now)
                else:
                    env.table_refresh(frame_obj.src_mac, frame_obj.device, now)
            env.forward(frame_obj, device=out)

        result = ExhaustiveSymbolicEngine().explore(body)
        report = Validator(BridgeSemantics(cfg)).validate(result, "poisoned")
        assert not report.p1.proven
        assert any("learn-binds-arrival-port" in f for f in report.p1.failures)
