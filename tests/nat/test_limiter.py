"""The verified rate limiter: concrete behaviour and its proof."""


from repro.nat.limiter import LimiterConfig, VigLimiter, limiter_loop_iteration
from repro.packets.builder import make_udp_packet
from repro.packets.headers import EthernetHeader, Packet

CFG = LimiterConfig(capacity=8, window=1_000_000, max_packets=3)


def ingress(src="10.0.0.5", now_unused=None):
    return make_udp_packet(src, "8.8.8.8", 4000, 53, device=0)


class TestBudgeting:
    def test_within_budget_forwarded(self):
        limiter = VigLimiter(CFG)
        for i in range(CFG.max_packets):
            out = limiter.process(ingress(), 1_000 + i)
            assert len(out) == 1
            assert out[0].device == CFG.egress_device

    def test_over_budget_dropped(self):
        limiter = VigLimiter(CFG)
        for i in range(CFG.max_packets):
            limiter.process(ingress(), 1_000 + i)
        assert limiter.process(ingress(), 2_000) == []
        assert limiter.budget_used(ingress().ipv4.src_ip) == CFG.max_packets

    def test_budgets_are_per_source(self):
        limiter = VigLimiter(CFG)
        for i in range(CFG.max_packets):
            limiter.process(ingress("10.0.0.5"), 1_000 + i)
        # A different source still has a full budget.
        assert limiter.process(ingress("10.0.0.6"), 2_000)
        assert limiter.tracked_sources() == 2

    def test_packet_not_modified(self):
        limiter = VigLimiter(CFG)
        original = ingress()
        out = limiter.process(original, 1_000)[0]
        assert out.ipv4.src_ip == original.ipv4.src_ip
        assert out.l4.src_port == original.l4.src_port


class TestFixedWindow:
    def test_window_expires_from_first_packet(self):
        """The window is fixed: traffic does NOT extend it."""
        limiter = VigLimiter(CFG)
        limiter.process(ingress(), 0)
        limiter.process(ingress(), CFG.window // 2)  # mid-window traffic
        # Just past the window opened at t=0: the budget resets even
        # though the source was active at window/2.
        late = CFG.window + 1
        assert limiter.process(ingress(), late)
        assert limiter.budget_used(ingress().ipv4.src_ip) == 1  # fresh window

    def test_blocked_source_recovers_next_window(self):
        limiter = VigLimiter(CFG)
        for i in range(CFG.max_packets + 2):
            limiter.process(ingress(), 100 + i)
        assert limiter.process(ingress(), 200) == []
        assert limiter.process(ingress(), 100 + CFG.window + 1)


class TestPassThroughAndEdges:
    def test_egress_direction_unlimited(self):
        limiter = VigLimiter(CFG)
        reply = make_udp_packet("8.8.8.8", "10.0.0.5", 53, 4000, device=1)
        for i in range(CFG.max_packets * 3):
            out = limiter.process(reply.clone(), 1_000 + i)
            assert len(out) == 1 and out[0].device == CFG.ingress_device
        assert limiter.tracked_sources() == 0  # no state for egress

    def test_non_ipv4_dropped(self):
        limiter = VigLimiter(CFG)
        arp = Packet(eth=EthernetHeader(ethertype=0x0806), device=0)
        assert limiter.process(arp, 1_000) == []

    def test_table_full_fails_closed(self):
        limiter = VigLimiter(CFG)
        for i in range(CFG.capacity):
            limiter.process(ingress(f"10.0.1.{i}"), 1_000)
        # A new source cannot open a budget: dropped, not waved through.
        assert limiter.process(ingress("10.0.2.9"), 1_001) == []

    def test_unknown_device_dropped(self):
        limiter = VigLimiter(CFG)
        packet = ingress()
        packet.device = 7
        assert limiter.process(packet, 1_000) == []


class TestLimiterVerification:
    def test_pipeline_verifies_limiter(self):
        from repro.verif.engine import ExhaustiveSymbolicEngine
        from repro.verif.nf_env_limiter import (
            LimiterSemantics,
            limiter_symbolic_body,
        )
        from repro.verif.validator import Validator

        cfg = LimiterConfig()
        result = ExhaustiveSymbolicEngine().explore(limiter_symbolic_body(cfg))
        report = Validator(LimiterSemantics(cfg)).validate(result, "VigLimiter")
        assert report.verified, report.render()

    def test_unguarded_increment_fails_p2(self):
        """Dropping the budget guard makes count+1 a provable overflow."""
        from repro.nat.limiter import LimiterConfig as Cfg
        from repro.verif.engine import ExhaustiveSymbolicEngine
        from repro.verif.nf_env_limiter import (
            LimiterSemantics,
            SymbolicLimiterEnv,
        )
        from repro.verif.validator import Validator
        from repro.packets.headers import ETHERTYPE_IPV4

        cfg = Cfg()

        def body(ctx):
            env = SymbolicLimiterEnv(ctx, cfg)
            now = env.current_time()
            packet = env.receive()
            if packet is None:
                return
            if packet.ethertype != ETHERTYPE_IPV4:
                env.drop(packet)
                return
            if packet.device == cfg.ingress_device:
                index = env.budget_get(packet.src_ip)
                if index is not None:
                    count = env.counter_read(index)
                    # BUG: increments without the budget guard; at
                    # count == 2**32 - 1 this wraps.
                    env.counter_bump(index, count + 1)
                    env.forward(packet, device=cfg.egress_device)
                else:
                    env.drop(packet)
            else:
                env.drop(packet)

        result = ExhaustiveSymbolicEngine().explore(body)
        report = Validator(LimiterSemantics(cfg)).validate(result, "unguarded")
        assert not report.p2.proven
        assert any("arith-bounds" in f for f in report.p2.failures)

    def test_rejuvenating_mutant_fails_structurally(self):
        """Extending the window on traffic violates fixed-window spec."""
        from repro.nat.limiter import LimiterConfig as Cfg
        from repro.verif.engine import ExhaustiveSymbolicEngine
        from repro.verif.nf_env_limiter import (
            LimiterSemantics,
            SymbolicLimiterEnv,
        )
        from repro.verif.validator import Validator

        cfg = Cfg()

        class SlidingEnv(SymbolicLimiterEnv):
            def counter_bump(self, index, value):
                super().counter_bump(index, value)
                # BUG: sliding window — refresh the entry's timestamp.
                with self.models.call(
                    "dchain_rejuvenate_index", {"index": index, "time": 0}
                ):
                    pass

        def body(ctx):
            env = SlidingEnv(ctx, cfg)
            limiter_loop_iteration(env, cfg)

        result = ExhaustiveSymbolicEngine().explore(body)
        report = Validator(LimiterSemantics(cfg)).validate(result, "sliding")
        assert not report.p1.proven
        assert any("fixed-window" in f for f in report.p1.failures)
