"""Differential harness: the microflow cache must be invisible on the wire.

Every test runs the same traffic twice — once through the plain slow
path, once with :class:`~repro.nat.fastpath.FastPathNat` in front — and
asserts the emitted frames are **byte-identical** (same bytes, same
port, same timestamp, same order). Hypothesis drives mixed workloads:
both directions, repeated flows (cache hits), disabled UDP checksums,
TCP and UDP, fragments, and time gaps that cross the expiry threshold.

Coverage spans all three data paths the cache plugs into: the per-packet
and burst NF entry points (object and raw-byte, in ``cache`` and
``compiled`` mode), the DPDK-style runtime main loop, and the
RSS-sharded multi-worker runtime (``fastpath="cache"|"compiled"``).
"""

from hypothesis import given, settings, strategies as st

from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat
from repro.nat.noop import NoopForwarder
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.net.dpdk import DpdkRuntime, ShardedRuntime
from repro.packets.builder import make_tcp_packet, make_udp_packet

CFG_KW = dict(max_flows=8, expiration_time=2_000_000, start_port=1000)

INTERNAL_IPS = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]
REMOTE_IP = "8.8.8.8"


def _steps():
    return st.lists(
        st.tuples(
            st.sampled_from(["in", "out"]),
            st.integers(0, 5),  # flow selector
            st.sampled_from(["udp", "udp0", "tcp"]),  # udp0 = checksum disabled
            st.integers(0, 2_500_000),  # time increment (µs), can cross expiry
        ),
        min_size=1,
        max_size=40,
    )


def _packet(direction, selector, kind, config):
    if direction == "out":
        src = INTERNAL_IPS[selector % len(INTERNAL_IPS)]
        sport = 1024 + selector
        if kind == "tcp":
            return make_tcp_packet(src, REMOTE_IP, sport, 80, device=0)
        packet = make_udp_packet(src, REMOTE_IP, sport, 53, device=0)
    else:
        dport = config.start_port + selector  # probes the allocation range
        if kind == "tcp":
            return make_tcp_packet(REMOTE_IP, config.external_ip, 80, dport, device=1)
        packet = make_udp_packet(REMOTE_IP, config.external_ip, 53, dport, device=1)
    if kind == "udp0":
        packet.l4.checksum = 0
    return packet


def _render(outputs):
    return [(p.device, p.wire_bytes()) for p in outputs]


class TestNfEntryPoints:
    @settings(max_examples=80, deadline=None)
    @given(steps=_steps())
    def test_vignat_process_identical(self, steps):
        slow = VigNat(NatConfig(**CFG_KW))
        fast = FastPathNat(VigNat(NatConfig(**CFG_KW)))
        now = 0
        for direction, selector, kind, dt in steps:
            now += dt
            packet = _packet(direction, selector, kind, slow.config)
            assert _render(fast.process(packet.clone(), now)) == _render(
                slow.process(packet.clone(), now)
            )
        assert slow.flow_count() == fast.flow_count()

    @settings(max_examples=60, deadline=None)
    @given(steps=_steps(), burst=st.sampled_from((1, 4, 32)))
    def test_vignat_burst_identical(self, steps, burst):
        slow = VigNat(NatConfig(**CFG_KW))
        fast = FastPathNat(VigNat(NatConfig(**CFG_KW)))
        now = 0
        packets, times = [], []
        for direction, selector, kind, dt in steps:
            now += dt
            packets.append(_packet(direction, selector, kind, slow.config))
            times.append(now)
        for i in range(0, len(packets), burst):
            chunk = packets[i : i + burst]
            at = times[i]
            slow_out = slow.process_burst([p.clone() for p in chunk], at)
            fast_out = fast.process_burst([p.clone() for p in chunk], at)
            assert [_render(o) for o in fast_out] == [_render(o) for o in slow_out]

    @settings(max_examples=40, deadline=None)
    @given(steps=_steps())
    def test_unverified_process_identical(self, steps):
        """Bugs included: the hand-rolled inbound checksum patch must
        survive memoization byte-for-byte."""
        slow = UnverifiedNat(NatConfig(**CFG_KW))
        fast = FastPathNat(UnverifiedNat(NatConfig(**CFG_KW)))
        now = 0
        for direction, selector, kind, dt in steps:
            now += dt
            packet = _packet(direction, selector, kind, slow.config)
            assert _render(fast.process(packet.clone(), now)) == _render(
                slow.process(packet.clone(), now)
            )

    @settings(max_examples=40, deadline=None)
    @given(steps=_steps(), mode=st.sampled_from(("cache", "compiled")))
    def test_vignat_raw_burst_identical(self, steps, mode):
        """The zero-copy byte path — replay cache and compiled
        closures — against the object slow path."""
        slow = VigNat(NatConfig(**CFG_KW))
        fast = FastPathNat(VigNat(NatConfig(**CFG_KW)), mode=mode)
        now = 0
        for direction, selector, kind, dt in steps:
            now += dt
            packet = _packet(direction, selector, kind, slow.config)
            slow_out = slow.process(packet.clone(), now)
            raw_out = fast.process_raw_burst(
                [(bytearray(packet.wire_bytes()), packet.device)], now
            )[0]
            assert raw_out == [(p.wire_bytes(), p.device) for p in slow_out]

    @settings(max_examples=30, deadline=None)
    @given(steps=_steps(), burst=st.sampled_from((1, 4, 32)))
    def test_vignat_raw_burst_compiled_batches_identical(self, steps, burst):
        """Whole bursts through the compiled batch path: same-flow runs
        are partitioned and batch-applied, yet the wire output must
        match the per-packet object slow path exactly."""
        slow = VigNat(NatConfig(**CFG_KW))
        fast = FastPathNat(VigNat(NatConfig(**CFG_KW)), mode="compiled")
        now = 0
        packets, times = [], []
        for direction, selector, kind, dt in steps:
            now += dt
            packets.append(_packet(direction, selector, kind, slow.config))
            times.append(now)
        for i in range(0, len(packets), burst):
            chunk = packets[i : i + burst]
            at = times[i]
            slow_out = slow.process_burst([p.clone() for p in chunk], at)
            raw_out = fast.process_raw_burst(
                [(bytearray(p.wire_bytes()), p.device) for p in chunk], at
            )
            assert [list(outs) for outs in raw_out] == [
                [(p.wire_bytes(), p.device) for p in outs] for outs in slow_out
            ]


class TestRuntimeMainLoop:
    def _drive(self, nf, steps):
        runtime = DpdkRuntime(port_count=2)
        config = NatConfig(**CFG_KW)
        now = 0
        collected = []
        for direction, selector, kind, dt in steps:
            now += dt
            packet = _packet(direction, selector, kind, config)
            port = 0 if packet.device == 0 else 1
            assert runtime.inject(port, packet, timestamp=now)
            runtime.main_loop_burst(nf, now_us=now)
            collected.extend(
                (port_id, ts, p.wire_bytes()) for port_id, ts, p in runtime.collect()
            )
        return collected

    @settings(max_examples=40, deadline=None)
    @given(steps=_steps())
    def test_main_loop_identical(self, steps):
        slow_frames = self._drive(VigNat(NatConfig(**CFG_KW)), steps)
        fast_frames = self._drive(FastPathNat(VigNat(NatConfig(**CFG_KW))), steps)
        assert fast_frames == slow_frames

    def test_noop_main_loop_identical(self):
        steps = [("out", i % 4, "udp", 1_000) for i in range(16)]
        slow_frames = self._drive(NoopForwarder(0, 1), steps)
        fast_frames = self._drive(FastPathNat(NoopForwarder(0, 1)), steps)
        assert fast_frames == slow_frames


class TestShardedRuntime:
    @settings(max_examples=25, deadline=None)
    @given(
        steps=_steps(),
        workers=st.sampled_from((1, 2, 4)),
        fastpath=st.sampled_from(("cache", "compiled")),
    )
    def test_sharded_identical(self, steps, workers, fastpath):
        def drive(fastpath):
            runtime = ShardedRuntime(
                VigNat, NatConfig(**CFG_KW), workers=workers, fastpath=fastpath
            )
            now = 0
            collected = []
            for direction, selector, kind, dt in steps:
                now += dt
                packet = _packet(direction, selector, kind, runtime.config)
                port = 0 if packet.device == 0 else 1
                runtime.inject(port, packet, timestamp=now)
                runtime.main_loop_burst(now_us=now)
                collected.extend(
                    (port_id, ts, p.wire_bytes())
                    for port_id, ts, p in runtime.collect()
                )
            return collected, runtime

        slow_frames, _ = drive(fastpath="off")
        fast_frames, fast_runtime = drive(fastpath=fastpath)
        assert fast_frames == slow_frames
        # The wrapper is in place and the counters surface per worker.
        aggregated = fast_runtime.op_counters()
        assert "fastpath_hits" in aggregated
        assert aggregated["fastpath_hits"] + aggregated["fastpath_misses"] > 0
