"""Stateless CGNAT: the bijection, sharding, and the packet path.

The hypothesis properties here are the executable twin of the concolic
proof in ``repro.verif.nf_env_cgnat``: bijectivity of the subscriber/
port map over arbitrary domain shapes, shard-disjointness under
``partition``, and the differential that DetNat's return-path routing
agrees with the RSS steering's external-port ownership.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nat.cgnat import CgnatConfig, DetNat
from repro.nat.config import NatConfig
from repro.net.rss import NatSteering
from repro.packets.builder import make_udp_packet


def small_config(subscribers=8, ports_each=16, start_port=2_000):
    return CgnatConfig(
        start_port=start_port,
        max_flows=subscribers * ports_each,
        subscriber_count=subscribers,
    )


def domain_shapes():
    """Arbitrary valid (subscribers, ports-per-subscriber, start) shapes."""
    return st.tuples(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=32_000),
    ).filter(lambda t: t[2] + t[0] * t[1] - 1 <= 0xFFFF)


class TestBijection:
    @settings(max_examples=200, deadline=None)
    @given(shape=domain_shapes(), data=st.data())
    def test_forward_return_round_trip(self, shape, data):
        subscribers, ports_each, start = shape
        cfg = CgnatConfig(
            start_port=start,
            max_flows=subscribers * ports_each,
            subscriber_count=subscribers,
        )
        s = data.draw(st.integers(0, subscribers - 1))
        o = data.draw(st.integers(0, ports_each - 1))
        src_ip = cfg.internal_base + s
        src_port = cfg.internal_port_base + o
        ext = cfg.map_forward(src_ip, src_port)
        assert ext is not None
        assert cfg.domain_start_port <= ext <= cfg.domain_end_port
        assert cfg.map_return(ext) == (src_ip, src_port)

    @settings(max_examples=200, deadline=None)
    @given(shape=domain_shapes(), data=st.data())
    def test_distinct_endpoints_get_distinct_ports(self, shape, data):
        subscribers, ports_each, start = shape
        cfg = CgnatConfig(
            start_port=start,
            max_flows=subscribers * ports_each,
            subscriber_count=subscribers,
        )
        endpoint = st.tuples(
            st.integers(0, subscribers - 1), st.integers(0, ports_each - 1)
        )
        a = data.draw(endpoint)
        b = data.draw(endpoint)
        port_of = lambda e: cfg.map_forward(  # noqa: E731
            cfg.internal_base + e[0], cfg.internal_port_base + e[1]
        )
        if a == b:
            assert port_of(a) == port_of(b)
        else:
            assert port_of(a) != port_of(b)

    def test_exhaustive_bijection_on_a_small_domain(self):
        # Totality both ways: every internal endpoint hits exactly one
        # domain port and every domain port names exactly one endpoint.
        cfg = small_config(subscribers=4, ports_each=8)
        forward = {
            cfg.map_forward(cfg.internal_base + s, cfg.internal_port_base + o)
            for s in range(4)
            for o in range(8)
        }
        assert forward == set(range(cfg.domain_start_port, cfg.domain_end_port + 1))
        for port in range(cfg.domain_start_port, cfg.domain_end_port + 1):
            src_ip, src_port = cfg.map_return(port)
            assert cfg.map_forward(src_ip, src_port) == port

    def test_out_of_domain_maps_to_none(self):
        cfg = small_config()
        assert cfg.map_forward(cfg.internal_base - 1, cfg.internal_port_base) is None
        assert (
            cfg.map_forward(
                cfg.internal_base + cfg.subscriber_count, cfg.internal_port_base
            )
            is None
        )
        assert cfg.map_forward(cfg.internal_base, cfg.internal_port_base - 1) is None
        assert (
            cfg.map_forward(
                cfg.internal_base,
                cfg.internal_port_base + cfg.ports_per_subscriber,
            )
            is None
        )
        assert cfg.map_return(cfg.domain_start_port - 1) is None
        assert cfg.map_return(cfg.domain_end_port + 1) is None


class TestSharding:
    @settings(max_examples=100, deadline=None)
    @given(
        shape=domain_shapes().filter(lambda t: t[0] * t[1] >= 4),
        workers=st.integers(min_value=1, max_value=8),
    )
    def test_shards_are_disjoint_and_share_the_domain(self, shape, workers):
        subscribers, ports_each, start = shape
        cfg = CgnatConfig(
            start_port=start,
            max_flows=subscribers * ports_each,
            subscriber_count=subscribers,
        )
        if workers > cfg.max_flows:
            return
        shards = cfg.partition(workers)
        covered = []
        for shard in shards:
            # partition() preserves the subclass and the mapping fields:
            # every worker computes the same global bijection.
            assert isinstance(shard, CgnatConfig)
            assert shard.domain_start_port == cfg.domain_start_port
            assert shard.domain_size == cfg.domain_size
            assert shard.internal_base == cfg.internal_base
            assert shard.subscriber_count == cfg.subscriber_count
            covered.extend(shard.port_range())
        # Disjoint and exhaustive over the parent's (= domain's) range.
        assert covered == list(cfg.port_range())

    def test_return_routing_agrees_with_rss_ownership(self):
        """The satellite-4 differential: for every domain port, the
        worker RSS steers the reply to inverts it to the same endpoint
        whose forward mapping produced it — port ownership and the
        bijection never disagree."""
        cfg = small_config(subscribers=8, ports_each=16)
        shards = cfg.partition(4)
        steering = NatSteering(shards)
        for port in range(cfg.domain_start_port, cfg.domain_end_port + 1):
            shard_index = steering.shard_of_port(port)
            assert shard_index is not None
            owner = shards[shard_index]
            endpoint = owner.map_return(port)
            assert endpoint is not None
            assert owner.map_forward(*endpoint) == port
            # Statelessness: every other worker computes the same inverse.
            assert all(s.map_return(port) == endpoint for s in shards)

    def test_reply_packet_through_owner_worker_reaches_originator(self):
        cfg = small_config(subscribers=4, ports_each=8)
        shards = cfg.partition(2)
        steering = NatSteering(shards)
        workers = [DetNat(shard) for shard in shards]
        for s in range(cfg.subscriber_count):
            for o in range(cfg.ports_per_subscriber):
                src_ip = cfg.internal_base + s
                src_port = cfg.internal_port_base + o
                out = make_udp_packet(
                    src_ip, "8.8.8.8", src_port, 53, device=cfg.internal_device
                )
                # Forward through any worker (the map is global) ...
                (translated,) = workers[0].process(out, 0)
                ext_port = translated.l4.src_port
                # ... and reply through the worker RSS says owns the port.
                owner = steering.owner_of_port(ext_port)
                assert owner is not None
                reply = make_udp_packet(
                    "8.8.8.8",
                    cfg.external_ip,
                    53,
                    ext_port,
                    device=cfg.external_device,
                )
                (delivered,) = workers[owner].process(reply, 0)
                assert delivered.device == cfg.internal_device
                assert delivered.ipv4.dst_ip == src_ip
                assert delivered.l4.dst_port == src_port


class TestDetNatPacketPath:
    def test_forward_translation(self):
        cfg = small_config()
        nat = DetNat(cfg)
        packet = make_udp_packet(
            cfg.internal_base + 3,
            "8.8.8.8",
            cfg.internal_port_base + 5,
            53,
            device=cfg.internal_device,
        )
        (out,) = nat.process(packet, 0)
        assert out.device == cfg.external_device
        assert out.ipv4.src_ip == cfg.external_ip
        assert out.l4.src_port == cfg.block_start(3) + 5
        # Destination untouched.
        assert out.ipv4.dst_ip == packet.ipv4.dst_ip
        assert out.l4.dst_port == 53

    def test_out_of_pool_source_dropped_and_counted(self):
        cfg = small_config()
        nat = DetNat(cfg)
        stranger = make_udp_packet(
            "10.0.0.1", "8.8.8.8", 5_000, 53, device=cfg.internal_device
        )
        assert nat.process(stranger, 0) == []
        over_window = make_udp_packet(
            cfg.internal_base,
            "8.8.8.8",
            cfg.internal_port_base + cfg.ports_per_subscriber,
            53,
            device=cfg.internal_device,
        )
        assert nat.process(over_window, 0) == []
        counters = nat.op_counters()
        assert counters["dropped"] == 2
        assert counters["dropped_out_of_domain"] == 2

    def test_unknown_external_port_dropped(self):
        cfg = small_config()
        nat = DetNat(cfg)
        reply = make_udp_packet(
            "8.8.8.8",
            cfg.external_ip,
            53,
            cfg.domain_end_port + 1,
            device=cfg.external_device,
        )
        assert nat.process(reply, 0) == []
        assert nat.op_counters()["dropped_out_of_domain"] == 1

    def test_statelessness_surface(self):
        nat = DetNat(small_config())
        assert nat.flow_count() == 0
        assert nat.checkpoint_state() == {}
        nat.restore_state({})  # a standby restore is config-only
        with pytest.raises(ValueError):
            nat.restore_state({"flows": [1]})

    def test_requires_cgnat_config(self):
        with pytest.raises(TypeError, match="CgnatConfig"):
            DetNat(NatConfig(max_flows=64, start_port=1_000))

    def test_burst_matches_per_packet(self):
        cfg = small_config()
        packets = [
            make_udp_packet(
                cfg.internal_base + s,
                "8.8.8.8",
                cfg.internal_port_base + s,
                53,
                device=cfg.internal_device,
            )
            for s in range(4)
        ]
        def rendered(results):
            return [[p.wire_bytes() for p in outs] for outs in results]

        one_by_one = [DetNat(cfg).process(p, 0) for p in packets]
        bursted = DetNat(cfg).process_burst(packets, 0)
        assert rendered(bursted) == rendered(one_by_one)

    def test_domain_validation(self):
        with pytest.raises(ValueError, match="divide"):
            CgnatConfig(start_port=1_000, max_flows=10, subscriber_count=3)
        with pytest.raises(ValueError, match="escapes the mapping domain"):
            CgnatConfig(
                start_port=1_000,
                max_flows=64,
                subscriber_count=4,
                domain_start_port=2_000,
                domain_size=64,
            )
