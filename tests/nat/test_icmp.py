"""ICMP translation (RFC 3022 §4.3): errors with embedded packets, echo."""


from repro.nat.config import NatConfig
from repro.nat.icmp_ext import IcmpAwareNat
from repro.packets.addresses import ip_to_int
from repro.packets.builder import make_udp_packet
from repro.packets.headers import (
    EthernetHeader,
    Ipv4Header,
    PROTO_ICMP,
    PROTO_UDP,
    Packet,
)
from repro.packets.icmp import (
    ICMP_DEST_UNREACHABLE,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    IcmpMessage,
)

CFG = NatConfig(max_flows=16, expiration_time=60_000_000, start_port=1000)

HOST = "10.0.0.5"
REMOTE = "8.8.8.8"


def icmp_packet(src, dst, message: IcmpMessage, device: int) -> Packet:
    payload = message.pack(fill_checksum=True)
    ipv4 = Ipv4Header(
        protocol=PROTO_ICMP,
        src_ip=ip_to_int(src) if isinstance(src, str) else src,
        dst_ip=ip_to_int(dst) if isinstance(dst, str) else dst,
        total_length=20 + len(payload),
    )
    packet = Packet(eth=EthernetHeader(), ipv4=ipv4, payload=payload, device=device)
    packet.to_bytes()
    return packet


def open_flow(nat):
    """Send one outbound UDP packet; returns the translated packet."""
    return nat.process(make_udp_packet(HOST, REMOTE, 4000, 53, device=0), 1_000)[0]


def error_about(translated, icmp_type=ICMP_DEST_UNREACHABLE, code=3) -> IcmpMessage:
    """An ICMP error embedding the translated outbound packet."""
    inner_ip = Ipv4Header(
        protocol=PROTO_UDP,
        src_ip=translated.ipv4.src_ip,
        dst_ip=translated.ipv4.dst_ip,
        total_length=28,
    )
    body = inner_ip.pack(fill_checksum=True)
    body += translated.l4.src_port.to_bytes(2, "big")
    body += translated.l4.dst_port.to_bytes(2, "big")
    body += b"\x00\x1c\x00\x00"  # UDP length/checksum stub
    return IcmpMessage(icmp_type=icmp_type, code=code, body=body)


class TestInboundErrors:
    def test_unreachable_delivered_to_internal_host(self):
        nat = IcmpAwareNat(CFG)
        translated = open_flow(nat)
        error = error_about(translated)
        arriving = icmp_packet(REMOTE, CFG.external_ip, error, device=1)
        out = nat.process(arriving, 2_000)
        assert len(out) == 1
        delivered = out[0]
        assert delivered.device == CFG.internal_device
        assert delivered.ipv4.dst_ip == ip_to_int(HOST)

    def test_embedded_packet_rewritten_back(self):
        nat = IcmpAwareNat(CFG)
        translated = open_flow(nat)
        arriving = icmp_packet(REMOTE, CFG.external_ip, error_about(translated), device=1)
        delivered = nat.process(arriving, 2_000)[0]
        message = IcmpMessage.unpack(delivered.payload)
        inner_ip, sport, dport, _ = message.embedded()
        assert inner_ip.src_ip == ip_to_int(HOST)  # de-translated
        assert sport == 4000  # the original internal source port
        assert dport == 53
        assert inner_ip.header_checksum_valid()
        assert message.checksum_valid()

    def test_error_for_unknown_flow_dropped(self):
        nat = IcmpAwareNat(CFG)
        translated = open_flow(nat)
        bogus = error_about(translated)
        # Claim the error is about a port nobody mapped.
        inner_ip, sport, dport, trailing = IcmpMessage.unpack(
            bogus.pack()
        ).embedded()
        bogus.replace_embedded(inner_ip, 9999, dport, trailing)
        arriving = icmp_packet(REMOTE, CFG.external_ip, bogus, device=1)
        assert nat.process(arriving, 2_000) == []

    def test_error_not_about_our_address_dropped(self):
        nat = IcmpAwareNat(CFG)
        translated = open_flow(nat)
        error = error_about(translated)
        inner_ip, sport, dport, trailing = IcmpMessage.unpack(error.pack()).embedded()
        inner_ip.src_ip = ip_to_int("1.2.3.4")  # not the NAT's external IP
        error.replace_embedded(inner_ip, sport, dport, trailing)
        arriving = icmp_packet(REMOTE, CFG.external_ip, error, device=1)
        assert nat.process(arriving, 2_000) == []

    def test_truncated_error_dropped(self):
        nat = IcmpAwareNat(CFG)
        open_flow(nat)
        stub = IcmpMessage(icmp_type=ICMP_DEST_UNREACHABLE, body=b"\x45\x00")
        arriving = icmp_packet(REMOTE, CFG.external_ip, stub, device=1)
        assert nat.process(arriving, 2_000) == []


class TestOutboundErrors:
    def test_internal_error_translated_outward(self):
        """An internal host reports an error about inbound traffic."""
        nat = IcmpAwareNat(CFG)
        translated = open_flow(nat)
        # The embedded packet is the inbound one: remote -> internal host.
        inner_ip = Ipv4Header(
            protocol=PROTO_UDP,
            src_ip=ip_to_int(REMOTE),
            dst_ip=ip_to_int(HOST),
            total_length=28,
        )
        body = inner_ip.pack(fill_checksum=True)
        body += (53).to_bytes(2, "big") + (4000).to_bytes(2, "big")
        body += b"\x00\x1c\x00\x00"
        error = IcmpMessage(icmp_type=ICMP_DEST_UNREACHABLE, code=3, body=body)
        outgoing = icmp_packet(HOST, REMOTE, error, device=0)
        out = nat.process(outgoing, 2_000)
        assert len(out) == 1
        emitted = out[0]
        assert emitted.device == CFG.external_device
        assert emitted.ipv4.src_ip == CFG.external_ip  # outer masqueraded
        message = IcmpMessage.unpack(emitted.payload)
        inner, sport, dport, _ = message.embedded()
        assert inner.dst_ip == CFG.external_ip  # embedded dst translated
        assert dport == translated.l4.src_port  # to the external port


class TestEcho:
    def test_echo_round_trip(self):
        nat = IcmpAwareNat(CFG)
        request = IcmpMessage(
            icmp_type=ICMP_ECHO_REQUEST, rest=(0x1234 << 16) | 1, body=b"ping"
        )
        out = nat.process(icmp_packet(HOST, REMOTE, request, device=0), 1_000)
        assert len(out) == 1
        assert out[0].ipv4.src_ip == CFG.external_ip
        ext_id = (IcmpMessage.unpack(out[0].payload).rest >> 16) & 0xFFFF

        reply = IcmpMessage(
            icmp_type=ICMP_ECHO_REPLY, rest=(ext_id << 16) | 1, body=b"ping"
        )
        back = nat.process(icmp_packet(REMOTE, CFG.external_ip, reply, device=1), 2_000)
        assert len(back) == 1
        assert back[0].ipv4.dst_ip == ip_to_int(HOST)
        restored = IcmpMessage.unpack(back[0].payload)
        assert (restored.rest >> 16) & 0xFFFF == 0x1234  # original identifier
        assert restored.checksum_valid()

    def test_two_hosts_same_identifier_disambiguated(self):
        nat = IcmpAwareNat(CFG)
        ids = []
        for host in ("10.0.0.5", "10.0.0.6"):
            request = IcmpMessage(icmp_type=ICMP_ECHO_REQUEST, rest=(7 << 16) | 1)
            out = nat.process(icmp_packet(host, REMOTE, request, device=0), 1_000)[0]
            ids.append((IcmpMessage.unpack(out.payload).rest >> 16) & 0xFFFF)
        assert ids[0] != ids[1]

    def test_unsolicited_reply_dropped(self):
        nat = IcmpAwareNat(CFG)
        reply = IcmpMessage(icmp_type=ICMP_ECHO_REPLY, rest=(99 << 16) | 1)
        assert nat.process(icmp_packet(REMOTE, CFG.external_ip, reply, device=1), 1_000) == []


class TestDelegation:
    def test_udp_still_goes_through_the_verified_core(self):
        nat = IcmpAwareNat(CFG)
        translated = open_flow(nat)
        assert translated.ipv4.src_ip == CFG.external_ip
        assert nat.flow_count() == 1

    def test_other_icmp_types_dropped(self):
        nat = IcmpAwareNat(CFG)
        router_ad = IcmpMessage(icmp_type=9)
        assert nat.process(icmp_packet(REMOTE, CFG.external_ip, router_ad, device=1), 1_000) == []
