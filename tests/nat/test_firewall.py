"""The verified firewall: concrete behaviour and its Vigor proof."""

import pytest

from repro.nat.config import NatConfig
from repro.nat.firewall import VigFirewall
from repro.nat.flow import flow_id_of_packet
from repro.packets.builder import make_tcp_packet, make_udp_packet
from repro.packets.headers import EthernetHeader, Packet

CFG = NatConfig(max_flows=8, expiration_time=2_000_000)


def outbound(sport=4000, maker=make_udp_packet):
    return maker("10.0.0.5", "8.8.8.8", sport, 53, device=0)


def inbound_reply(out_packet, maker=make_udp_packet):
    return maker(
        "8.8.8.8", "10.0.0.5", 53, out_packet.l4.src_port, device=1
    )


class TestOutbound:
    def test_forwarded_unchanged(self):
        fw = VigFirewall(CFG)
        original = outbound()
        out = fw.process(original, 1_000)
        assert len(out) == 1
        assert out[0].device == CFG.external_device
        assert out[0].ipv4.src_ip == original.ipv4.src_ip  # no rewriting
        assert out[0].l4.src_port == original.l4.src_port
        assert out[0].l4_checksum_valid()

    def test_session_created(self):
        fw = VigFirewall(CFG)
        packet = outbound()
        fw.process(packet, 1_000)
        assert fw.session_count() == 1
        assert fw.has_session(flow_id_of_packet(packet))

    def test_same_flow_one_session(self):
        fw = VigFirewall(CFG)
        fw.process(outbound(), 1_000)
        fw.process(outbound(), 2_000)
        assert fw.session_count() == 1

    def test_full_table_drops_new_flows(self):
        fw = VigFirewall(CFG)
        for i in range(CFG.max_flows):
            assert fw.process(outbound(sport=4000 + i), 1_000)
        assert fw.process(outbound(sport=9999), 1_001) == []
        assert fw.session_count() == CFG.max_flows


class TestInbound:
    def test_established_reply_allowed(self):
        fw = VigFirewall(CFG)
        out = fw.process(outbound(sport=4321), 1_000)[0]
        back = fw.process(inbound_reply(out), 2_000)
        assert len(back) == 1
        assert back[0].device == CFG.internal_device
        assert back[0].l4.dst_port == 4321
        assert back[0].ipv4.dst_ip == out.ipv4.src_ip  # unchanged

    def test_unsolicited_blocked(self):
        fw = VigFirewall(CFG)
        unsolicited = make_udp_packet("8.8.8.8", "10.0.0.5", 53, 4000, device=1)
        assert fw.process(unsolicited, 1_000) == []
        assert fw.session_count() == 0  # never creates state

    def test_wrong_port_blocked(self):
        fw = VigFirewall(CFG)
        fw.process(outbound(sport=4321), 1_000)
        stray = make_udp_packet("8.8.8.8", "10.0.0.5", 53, 4322, device=1)
        assert fw.process(stray, 2_000) == []

    def test_reply_refreshes_session(self):
        fw = VigFirewall(CFG)
        out = fw.process(outbound(), 0)[0]
        fw.process(inbound_reply(out), 1_500_000)
        # 3s after creation but 1.5s after the reply: still alive.
        assert len(fw.process(outbound(), 3_000_000)) == 1
        assert fw.session_count() == 1


class TestExpiry:
    def test_idle_session_expires(self):
        fw = VigFirewall(CFG)
        out = fw.process(outbound(), 1_000)[0]
        late = 1_000 + CFG.expiration_time + 1
        assert fw.process(inbound_reply(out), late) == []
        assert fw.session_count() == 0

    def test_tcp_and_udp_tracked_separately(self):
        fw = VigFirewall(CFG)
        tcp_out = fw.process(outbound(maker=make_tcp_packet), 1_000)[0]
        assert fw.session_count() == 1
        # Only a TCP session exists: the same 5-tuple over UDP is blocked.
        udp_reply = inbound_reply(tcp_out, maker=make_udp_packet)
        assert fw.process(udp_reply, 1_500) == []
        # The genuine TCP reply is allowed.
        tcp_reply = inbound_reply(tcp_out, maker=make_tcp_packet)
        assert len(fw.process(tcp_reply, 1_600)) == 1


class TestNonFlow:
    def test_arp_dropped(self):
        fw = VigFirewall(CFG)
        arp = Packet(eth=EthernetHeader(ethertype=0x0806), device=0)
        assert fw.process(arp, 1_000) == []

    def test_unknown_device_dropped(self):
        fw = VigFirewall(CFG)
        packet = outbound()
        packet.device = 9
        assert fw.process(packet, 1_000) == []


class TestFirewallVerification:
    """The same pipeline that verified the NAT verifies the firewall."""

    @pytest.fixture(scope="class")
    def report(self):
        from repro.verif.engine import ExhaustiveSymbolicEngine
        from repro.verif.nf_env_fw import firewall_symbolic_body
        from repro.verif.semantics import FirewallSemantics
        from repro.verif.validator import Validator

        cfg = NatConfig()
        result = ExhaustiveSymbolicEngine().explore(firewall_symbolic_body(cfg))
        return Validator(FirewallSemantics(cfg)).validate(result, "VigFirewall")

    def test_all_properties_proven(self, report):
        assert report.verified, report.render()

    def test_obligations_discharged(self, report):
        assert report.p1.obligations >= 30
        assert report.p5.obligations >= 20

    def test_mutant_pass_through_firewall_fails(self):
        """A 'firewall' that forwards unsolicited inbound is rejected."""
        from repro.nat.firewall import firewall_loop_iteration
        from repro.verif.engine import ExhaustiveSymbolicEngine
        from repro.verif.nf_env_fw import SymbolicFirewallEnv
        from repro.verif.semantics import FirewallSemantics
        from repro.verif.validator import Validator

        cfg = NatConfig()

        class LeakyEnv(SymbolicFirewallEnv):
            def session_get_external(self, packet):
                index = super().session_get_external(packet)
                if index is None:
                    # BUG: treat unknown inbound sessions as found.
                    self.forward(packet, device=cfg.internal_device)
                return index

        def body(ctx):
            env = LeakyEnv(ctx, cfg)
            firewall_loop_iteration(env, cfg)

        result = ExhaustiveSymbolicEngine().explore(body)
        report = Validator(FirewallSemantics(cfg)).validate(result, "leaky")
        assert not report.p1.proven
