"""Conntrack per-state timeouts: NEW connections die early."""

from repro.nat.config import NatConfig
from repro.nat.netfilter import ConntrackState, NetfilterNat
from repro.packets.builder import make_udp_packet

# A long idle timeout so the NEW/ESTABLISHED distinction is visible.
CFG = NatConfig(max_flows=16, expiration_time=300_000_000, start_port=1000)

S = 1_000_000  # microseconds per second


def outbound(sport=4000, now=0):
    return make_udp_packet("10.0.0.5", "8.8.8.8", sport, 53, device=0)


class TestPerStateTimeouts:
    def test_unanswered_new_connection_expires_at_30s(self):
        nat = NetfilterNat(CFG)
        out = nat.process(outbound(), 0)[0]
        # 31 s later the NEW entry is gone: the reply blackholes.
        reply = make_udp_packet("8.8.8.8", CFG.external_ip, 53, out.l4.src_port, device=1)
        assert nat.process(reply, 31 * S) == []
        assert nat.flow_count() == 0

    def test_established_connection_survives_30s(self):
        nat = NetfilterNat(CFG)
        nat.process(outbound(), 0)
        nat.process(outbound(), 1 * S)  # second packet: ESTABLISHED
        ct = next(iter(nat._lru.values()))
        assert ct.state is ConntrackState.ESTABLISHED
        # 31 s after the last packet: still within the 300 s idle timeout.
        out = nat.process(outbound(), 32 * S)
        assert out
        assert nat.flow_count() == 1

    def test_established_connection_expires_at_idle_timeout(self):
        nat = NetfilterNat(CFG)
        nat.process(outbound(), 0)
        nat.process(outbound(), 1 * S)
        late = 1 * S + CFG.expiration_time
        # The flow is gone; the next packet opens a NEW conntrack entry.
        nat.process(outbound(), late)
        ct = next(iter(nat._lru.values()))
        assert ct.state is ConntrackState.NEW

    def test_lazy_expiry_on_lookup(self):
        """A stale NEW entry behind a fresh ESTABLISHED one in the LRU
        is reaped when looked up, even though the front scan stops."""
        nat = NetfilterNat(CFG)
        nat.process(outbound(sport=1), 0)  # becomes ESTABLISHED below
        nat.process(outbound(sport=1), 1)
        nat.process(outbound(sport=2), 2)  # NEW, will go stale
        nat.process(outbound(sport=1), 3)  # moves sport=1 behind sport=2? no: to end
        # 31 s later: sport=2's NEW entry is stale; front of LRU is
        # sport=2 (oldest last_seen) so eager expiry handles it, but a
        # direct lookup must agree regardless of LRU position.
        out = nat.process(outbound(sport=2), 31 * S)
        assert out  # re-created as NEW and forwarded
        ct = nat._lookup(
            __import__("repro.nat.flow", fromlist=["flow_id_of_packet"]).flow_id_of_packet(
                outbound(sport=2)
            ),
            31 * S,
        )
        assert ct is not None and ct.state is ConntrackState.NEW

    def test_short_expiry_config_unchanged(self):
        """With Texp < 30 s the per-state logic is invisible (default)."""
        cfg = NatConfig(max_flows=16, expiration_time=2_000_000)
        nat = NetfilterNat(cfg)
        nat.process(outbound(), 0)
        assert nat.process(outbound(sport=9), cfg.expiration_time + 1)
        assert nat.flow_count() == 1  # the first (NEW) flow expired at Texp


class TestTcpTeardown:
    def _open_tcp(self, nat, now=0):
        from repro.packets.builder import make_tcp_packet

        out = nat.process(
            make_tcp_packet("10.0.0.5", "8.8.8.8", 4000, 80, device=0), now
        )[0]
        return out

    def test_rst_destroys_mapping_immediately(self):
        from repro.packets.builder import make_tcp_packet

        nat = NetfilterNat(CFG)
        out = self._open_tcp(nat)
        rst = make_tcp_packet(
            "10.0.0.5", "8.8.8.8", 4000, 80, flags=0x04, device=0
        )
        forwarded = nat.process(rst, 1_000)
        assert forwarded  # the RST itself still goes out
        assert nat.flow_count() == 0
        # A reply after the RST finds no mapping.
        reply = make_tcp_packet(
            "8.8.8.8", CFG.external_ip, 80, out.l4.src_port, device=1
        )
        assert nat.process(reply, 2_000) == []

    def test_fin_moves_to_closing_with_short_timeout(self):
        from repro.nat.netfilter import ConntrackState
        from repro.packets.builder import make_tcp_packet

        nat = NetfilterNat(CFG)
        out = self._open_tcp(nat)
        fin = make_tcp_packet(
            "10.0.0.5", "8.8.8.8", 4000, 80, flags=0x01 | 0x10, device=0
        )
        nat.process(fin, 1_000)
        ct = next(iter(nat._lru.values()))
        assert ct.state is ConntrackState.CLOSING
        # 31 s later (well within the 300 s idle timeout) it is gone.
        reply = make_tcp_packet(
            "8.8.8.8", CFG.external_ip, 80, out.l4.src_port, device=1
        )
        assert nat.process(reply, 31 * S) == []

    def test_plain_ack_does_not_tear_down(self):
        from repro.packets.builder import make_tcp_packet

        nat = NetfilterNat(CFG)
        self._open_tcp(nat)
        ack = make_tcp_packet("10.0.0.5", "8.8.8.8", 4000, 80, flags=0x10, device=0)
        nat.process(ack, 1_000)
        assert nat.flow_count() == 1

    def test_udp_unaffected_by_flag_logic(self):
        nat = NetfilterNat(CFG)
        nat.process(outbound(), 0)
        nat.process(outbound(), 1_000)
        assert nat.flow_count() == 1
