"""VigNat behaviour: the RFC 3022 semantics, concretely."""


from repro.nat.config import NatConfig
from repro.nat.flow import flow_id_of_packet
from repro.nat.vignat import VigNat
from repro.packets.addresses import ip_to_int
from repro.packets.builder import make_tcp_packet, make_udp_packet
from repro.packets.headers import EthernetHeader, Packet

CFG = NatConfig(max_flows=16, expiration_time=2_000_000, start_port=1000)

INTERNAL_HOST = "10.0.0.5"
REMOTE_HOST = "8.8.8.8"


def outbound(sport=4000, dport=53, host=INTERNAL_HOST, maker=make_udp_packet):
    return maker(host, REMOTE_HOST, sport, dport, device=CFG.internal_device)


def reply_to(translated, maker=make_udp_packet):
    return maker(
        REMOTE_HOST,
        translated.ipv4.dst_ip if False else CFG.external_ip,
        translated.l4.dst_port,
        translated.l4.src_port,
        device=CFG.external_device,
    )


class TestOutboundTranslation:
    def test_source_rewritten_to_external(self):
        nat = VigNat(CFG)
        out = nat.process(outbound(), 1_000)
        assert len(out) == 1
        packet = out[0]
        assert packet.ipv4.src_ip == CFG.external_ip
        assert CFG.start_port <= packet.l4.src_port < CFG.start_port + CFG.max_flows
        assert packet.device == CFG.external_device

    def test_destination_untouched(self):
        nat = VigNat(CFG)
        packet = nat.process(outbound(dport=443), 1_000)[0]
        assert packet.ipv4.dst_ip == ip_to_int(REMOTE_HOST)
        assert packet.l4.dst_port == 443

    def test_payload_preserved(self):
        nat = VigNat(CFG)
        original = make_udp_packet(
            INTERNAL_HOST, REMOTE_HOST, 4000, 53, payload=b"dns-query", device=0
        )
        packet = nat.process(original, 1_000)[0]
        assert packet.payload == b"dns-query"

    def test_checksums_patched_correctly(self):
        nat = VigNat(CFG)
        for maker in (make_udp_packet, make_tcp_packet):
            packet = nat.process(outbound(maker=maker), 1_000)[0]
            assert packet.ipv4.header_checksum_valid()
            assert packet.l4_checksum_valid()

    def test_same_flow_keeps_same_port(self):
        nat = VigNat(CFG)
        first = nat.process(outbound(), 1_000)[0]
        second = nat.process(outbound(), 2_000)[0]
        assert first.l4.src_port == second.l4.src_port
        assert nat.flow_count() == 1

    def test_distinct_flows_get_distinct_ports(self):
        nat = VigNat(CFG)
        ports = {
            nat.process(outbound(sport=4000 + i), 1_000)[0].l4.src_port
            for i in range(8)
        }
        assert len(ports) == 8

    def test_tcp_and_udp_are_distinct_flows(self):
        nat = VigNat(CFG)
        nat.process(outbound(maker=make_udp_packet), 1_000)
        nat.process(outbound(maker=make_tcp_packet), 1_000)
        assert nat.flow_count() == 2


class TestInboundTranslation:
    def test_reply_forwarded_to_internal_host(self):
        nat = VigNat(CFG)
        translated = nat.process(outbound(sport=4001), 1_000)[0]
        back = nat.process(reply_to(translated), 2_000)
        assert len(back) == 1
        packet = back[0]
        assert packet.ipv4.dst_ip == ip_to_int(INTERNAL_HOST)
        assert packet.l4.dst_port == 4001
        assert packet.device == CFG.internal_device
        assert packet.ipv4.header_checksum_valid()
        assert packet.l4_checksum_valid()

    def test_reply_source_untouched(self):
        nat = VigNat(CFG)
        translated = nat.process(outbound(), 1_000)[0]
        packet = nat.process(reply_to(translated), 2_000)[0]
        assert packet.ipv4.src_ip == ip_to_int(REMOTE_HOST)

    def test_unsolicited_external_dropped(self):
        """The security property: no state, no forwarding."""
        nat = VigNat(CFG)
        unsolicited = make_udp_packet(
            REMOTE_HOST, CFG.external_ip, 53, 1005, device=CFG.external_device
        )
        assert nat.process(unsolicited, 1_000) == []
        assert nat.flow_count() == 0

    def test_reply_from_wrong_remote_dropped(self):
        """Endpoint-dependent filtering: the 5-tuple must match."""
        nat = VigNat(CFG)
        translated = nat.process(outbound(), 1_000)[0]
        wrong_host = make_udp_packet(
            "9.9.9.9", CFG.external_ip,
            translated.l4.dst_port, translated.l4.src_port,
            device=CFG.external_device,
        )
        assert nat.process(wrong_host, 2_000) == []


class TestExpiration:
    def test_flow_expires_after_timeout(self):
        nat = VigNat(CFG)
        translated = nat.process(outbound(), 1_000)[0]
        # Beyond Texp: the reply must find no state.
        late = 1_000 + CFG.expiration_time + 1
        assert nat.process(reply_to(translated), late) == []
        assert nat.flow_count() == 0

    def test_boundary_is_inclusive(self):
        """Fig. 6: timestamp + Texp <= t removes the flow."""
        nat = VigNat(CFG)
        translated = nat.process(outbound(), 1_000)[0]
        exactly = 1_000 + CFG.expiration_time
        assert nat.process(reply_to(translated), exactly) == []

    def test_just_before_boundary_survives(self):
        nat = VigNat(CFG)
        translated = nat.process(outbound(), 1_000)[0]
        almost = 1_000 + CFG.expiration_time - 1
        assert len(nat.process(reply_to(translated), almost)) == 1

    def test_traffic_refreshes_flow(self):
        nat = VigNat(CFG)
        nat.process(outbound(), 0)
        nat.process(outbound(), 1_500_000)  # refresh at 1.5s
        # 3s total: expired relative to creation but not to refresh.
        out = nat.process(outbound(), 3_000_000)
        assert nat.flow_count() == 1
        assert len(out) == 1

    def test_reply_also_refreshes(self):
        nat = VigNat(CFG)
        translated = nat.process(outbound(), 0)[0]
        nat.process(reply_to(translated), 1_500_000)
        assert len(nat.process(reply_to(translated), 3_000_000)) == 1

    def test_expired_port_is_reusable(self):
        nat = VigNat(CFG)
        first = nat.process(outbound(sport=5000), 0)[0]
        late = CFG.expiration_time + 1
        second = nat.process(outbound(sport=6000), late)[0]
        assert second.l4.src_port == first.l4.src_port  # slot recycled


class TestCapacity:
    def test_full_table_drops_new_flows(self):
        nat = VigNat(CFG)
        for i in range(CFG.max_flows):
            assert nat.process(outbound(sport=1000 + i), 1_000)
        # Table is full; a new flow's packets are dropped (never evicted).
        assert nat.process(outbound(sport=9999), 1_001) == []
        assert nat.flow_count() == CFG.max_flows

    def test_existing_flows_survive_full_table(self):
        nat = VigNat(CFG)
        for i in range(CFG.max_flows):
            nat.process(outbound(sport=1000 + i), 1_000)
        nat.process(outbound(sport=9999), 1_001)  # dropped
        # The first flow still works.
        assert len(nat.process(outbound(sport=1000), 1_002)) == 1

    def test_expiry_reopens_capacity(self):
        nat = VigNat(CFG)
        for i in range(CFG.max_flows):
            nat.process(outbound(sport=1000 + i), 0)
        late = CFG.expiration_time + 1
        assert len(nat.process(outbound(sport=9999), late)) == 1


class TestNonFlowTraffic:
    def test_non_ipv4_dropped(self):
        nat = VigNat(CFG)
        arp = Packet(eth=EthernetHeader(ethertype=0x0806), device=0)
        assert nat.process(arp, 1_000) == []

    def test_icmp_dropped(self):
        from repro.packets.headers import Ipv4Header

        nat = VigNat(CFG)
        icmp = Packet(
            eth=EthernetHeader(),
            ipv4=Ipv4Header(protocol=1, src_ip=1, dst_ip=2),
            device=0,
        )
        assert nat.process(icmp, 1_000) == []

    def test_unknown_device_dropped(self):
        nat = VigNat(CFG)
        packet = outbound()
        packet.device = 7
        assert nat.process(packet, 1_000) == []


class TestIntrospection:
    def test_has_flow_and_port(self):
        nat = VigNat(CFG)
        packet = outbound(sport=7777)
        nat.process(packet, 1_000)
        fid = flow_id_of_packet(packet)
        assert nat.has_flow(fid)
        assert nat.external_port_of(fid) is not None
        assert nat.external_port_of(fid.reversed()) is None

    def test_op_counters_monotone(self):
        nat = VigNat(CFG)
        before = nat.op_counters()
        nat.process(outbound(), 1_000)
        after = nat.op_counters()
        assert after["forwarded"] == before["forwarded"] + 1
        assert after["map_probes"] >= before["map_probes"]

    def test_port_allocation_rule(self):
        """The loop invariant: port == start_port + chain index."""
        nat = VigNat(CFG)
        packet = nat.process(outbound(), 1_000)[0]
        assert packet.l4.src_port == CFG.start_port  # first index is 0
