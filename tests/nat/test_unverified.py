"""The unverified NAT: happy path plus its documented latent defects.

These are the reproduction's analogue of the CVEs the paper's
introduction cites: crafted inputs that crash, hang, or silently corrupt
an unverified NAT, each paired with a check that VigNat is immune.
"""

import pytest

from repro.nat.config import NatConfig
from repro.nat.flow import FlowId
from repro.nat.unverified import NatCrash, UnverifiedNat
from repro.nat.vignat import VigNat
from repro.packets.addresses import ip_to_int
from repro.packets.builder import make_udp_packet
from repro.packets.headers import PROTO_UDP

CFG = NatConfig(max_flows=16, expiration_time=2_000_000, start_port=1000)


def outbound(sport=4000, host="10.0.0.5"):
    return make_udp_packet(host, "8.8.8.8", sport, 53, device=0)


class TestHappyPath:
    def test_round_trip_translation(self):
        nat = UnverifiedNat(CFG)
        out = nat.process(outbound(), 1_000)[0]
        assert out.ipv4.src_ip == CFG.external_ip
        reply = make_udp_packet(
            "8.8.8.8", CFG.external_ip, 53, out.l4.src_port, device=1
        )
        back = nat.process(reply, 2_000)[0]
        assert back.ipv4.dst_ip == ip_to_int("10.0.0.5")
        assert back.l4.dst_port == 4000

    def test_expiration(self):
        nat = UnverifiedNat(CFG)
        nat.process(outbound(), 0)
        nat.process(outbound(sport=5000), CFG.expiration_time + 1)
        assert nat.flow_count() == 1  # the first flow expired

    def test_unsolicited_dropped(self):
        nat = UnverifiedNat(CFG)
        unsolicited = make_udp_packet("8.8.8.8", CFG.external_ip, 53, 1005, device=1)
        assert nat.process(unsolicited, 1_000) == []


class TestEvictionBug:
    """RFC 3022 says drop when full; this NAT evicts a live flow."""

    def test_eviction_breaks_established_flow(self):
        nat = UnverifiedNat(CFG)
        victim_out = nat.process(outbound(sport=1000), 1_000)[0]
        for i in range(1, CFG.max_flows):
            nat.process(outbound(sport=1000 + i), 1_000)
        # Table full. One more new flow evicts the victim...
        assert nat.process(outbound(sport=9999), 1_001) != []
        # ...so the victim's reply now blackholes.
        reply = make_udp_packet(
            "8.8.8.8", CFG.external_ip, 53, victim_out.l4.src_port, device=1
        )
        assert nat.process(reply, 1_002) == []

    def test_vignat_immune(self):
        nat = VigNat(CFG)
        victim_out = nat.process(outbound(sport=1000), 1_000)[0]
        for i in range(1, CFG.max_flows):
            nat.process(outbound(sport=1000 + i), 1_000)
        assert nat.process(outbound(sport=9999), 1_001) == []  # dropped
        reply = make_udp_packet(
            "8.8.8.8", CFG.external_ip, 53, victim_out.l4.src_port, device=1
        )
        assert nat.process(reply, 1_002) != []  # victim flow intact


class TestPortLeakCrash:
    """Eviction leaks the port; sustained churn crashes the NAT."""

    def test_crafted_churn_crashes(self):
        cfg = NatConfig(
            max_flows=4, expiration_time=60_000_000, start_port=65_530
        )
        nat = UnverifiedNat(cfg)
        with pytest.raises(NatCrash):
            # Far more fresh flows than ports: every eviction leaks one.
            for i in range(10):
                nat.process(outbound(sport=2000 + i), 1_000 + i)

    def test_vignat_survives_identical_churn(self):
        cfg = NatConfig(
            max_flows=4, expiration_time=60_000_000, start_port=65_530
        )
        nat = VigNat(cfg)
        forwarded = 0
        for i in range(10):
            forwarded += len(nat.process(outbound(sport=2000 + i), 1_000 + i))
        assert forwarded == 4  # table capacity; the rest dropped cleanly
        assert nat.flow_count() == 4


class TestChecksumCorruptionBug:
    """Inbound path corrupts a disabled (zero) UDP checksum."""

    def _reply_with_zero_checksum(self, nat):
        out = nat.process(outbound(), 1_000)[0]
        reply = make_udp_packet(
            "8.8.8.8", CFG.external_ip, 53, out.l4.src_port, device=1
        )
        reply.l4.checksum = 0  # sender disabled UDP checksumming
        return nat.process(reply, 2_000)[0]

    def test_unverified_emits_invalid_checksum(self):
        back = self._reply_with_zero_checksum(UnverifiedNat(CFG))
        assert back.l4.checksum != 0  # "patched" a disabled checksum
        assert not back.l4_checksum_valid()

    def test_vignat_keeps_checksum_disabled(self):
        back = self._reply_with_zero_checksum(VigNat(CFG))
        assert back.l4.checksum == 0


class TestHashFloodingDegradation:
    """Crafted colliding 5-tuples degrade chaining lookups to O(n)."""

    @staticmethod
    def _colliding_flows(nat, count):
        """Find flow IDs that land in one bucket of the chaining table."""
        table = nat._by_internal
        target = None
        found = []
        sport = 1
        while len(found) < count and sport < 60_000:
            fid = FlowId(ip_to_int("10.9.9.9"), sport, ip_to_int("8.8.8.8"), 53, PROTO_UDP)
            bucket = (hash(fid) & 0xFFFFFFFF) % table.bucket_count
            if target is None:
                target = bucket
                found.append(fid)
            elif bucket == target:
                found.append(fid)
            sport += 1
        return found

    def test_chain_grows_under_crafted_collisions(self):
        cfg = NatConfig(max_flows=64, expiration_time=60_000_000)
        nat = UnverifiedNat(cfg)
        flows = self._colliding_flows(nat, 8)
        if len(flows) < 8:
            pytest.skip("not enough collisions found in the search budget")
        for fid in flows:
            packet = make_udp_packet(fid.src_ip, fid.dst_ip, fid.src_port, fid.dst_port, device=0)
            nat.process(packet, 1_000)
        assert nat._by_internal.longest_chain() >= 8

    def test_vignat_probe_work_is_bounded_by_capacity(self):
        """Open addressing cannot degrade past the preallocated table."""
        cfg = NatConfig(max_flows=64, expiration_time=60_000_000)
        nat = VigNat(cfg)
        for i in range(64):
            nat.process(outbound(sport=3000 + i), 1_000)
        before = nat.op_counters()["map_probes"]
        nat.process(outbound(sport=3000), 1_001)
        delta = nat.op_counters()["map_probes"] - before
        assert delta <= 3 * cfg.max_flows
