"""Flow identifiers and translation entries."""

import pytest

from repro.nat.flow import Flow, FlowId, flow_id_of_packet
from repro.packets.builder import make_tcp_packet, make_udp_packet
from repro.packets.headers import PROTO_TCP, PROTO_UDP


class TestFlowId:
    def test_extracted_from_packet(self):
        packet = make_udp_packet("10.0.0.1", "8.8.8.8", 1234, 53)
        fid = flow_id_of_packet(packet)
        assert fid == FlowId(0x0A000001, 1234, 0x08080808, 53, PROTO_UDP)

    def test_protocol_distinguishes_flows(self):
        udp = flow_id_of_packet(make_udp_packet("10.0.0.1", "8.8.8.8", 1, 2))
        tcp = flow_id_of_packet(make_tcp_packet("10.0.0.1", "8.8.8.8", 1, 2))
        assert udp != tcp
        assert tcp.protocol == PROTO_TCP

    def test_reversed(self):
        fid = FlowId(1, 2, 3, 4, PROTO_UDP)
        rev = fid.reversed()
        assert rev == FlowId(3, 4, 1, 2, PROTO_UDP)
        assert rev.reversed() == fid

    def test_requires_l4(self):
        from repro.packets.headers import EthernetHeader, Packet

        with pytest.raises(ValueError):
            flow_id_of_packet(Packet(eth=EthernetHeader()))

    def test_hashable(self):
        a = FlowId(1, 2, 3, 4, 6)
        b = FlowId(1, 2, 3, 4, 6)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestFlow:
    def test_external_id_orientation(self):
        """Reply packets bear remote endpoint as src, NAT as dst."""
        internal = FlowId(
            src_ip=0x0A000001, src_port=4000, dst_ip=0x08080808, dst_port=53,
            protocol=PROTO_UDP,
        )
        flow = Flow(internal_id=internal, external_port=1024)
        ext = flow.external_id(external_ip=0xC0000201)
        assert ext.src_ip == 0x08080808
        assert ext.src_port == 53
        assert ext.dst_ip == 0xC0000201
        assert ext.dst_port == 1024
        assert ext.protocol == PROTO_UDP

    def test_flows_with_same_internal_differ_by_port(self):
        internal = FlowId(1, 2, 3, 4, PROTO_UDP)
        a = Flow(internal, 1000)
        b = Flow(internal, 1001)
        assert a.external_id(9) != b.external_id(9)
