"""Differential testing of the firewall against a dictionary shadow."""

from hypothesis import given, settings, strategies as st

from repro.nat.config import NatConfig
from repro.nat.firewall import VigFirewall
from repro.packets.builder import make_udp_packet

CFG = NatConfig(max_flows=3, expiration_time=1_000_000)

HOSTS = [0x0A000001, 0x0A000002]
REMOTES = [0x08080808, 0x09090909]


@settings(max_examples=100, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.sampled_from(["out", "in"]),
            st.integers(0, 1),  # host selector
            st.integers(0, 1),  # remote selector
            st.integers(0, 3),  # port selector
            st.integers(0, 1_200_000),  # dt
        ),
        max_size=30,
    )
)
def test_firewall_matches_shadow_model(steps):
    fw = VigFirewall(CFG)
    shadow = {}  # internal 5-tuple -> last_seen
    now = 0
    for direction, host_i, remote_i, port_i, dt in steps:
        now += dt
        threshold = now - CFG.expiration_time
        shadow = {k: t for k, t in shadow.items() if t > threshold}
        host, remote = HOSTS[host_i], REMOTES[remote_i]
        sport, dport = 4000 + port_i, 80

        if direction == "out":
            packet = make_udp_packet(host, remote, sport, dport, device=0)
            key = (host, sport, remote, dport)
            if key in shadow:
                expect_forward = True
                shadow[key] = now
            elif len(shadow) < CFG.max_flows:
                expect_forward = True
                shadow[key] = now
            else:
                expect_forward = False
        else:
            packet = make_udp_packet(remote, host, dport, sport, device=1)
            key = (host, sport, remote, dport)
            expect_forward = key in shadow
            if expect_forward:
                shadow[key] = now

        out = fw.process(packet, now)
        assert bool(out) == expect_forward, (direction, key, now)
        assert fw.session_count() == len(shadow)
