"""Compiled per-flow closures: byte-identity, rejection, invalidation.

The compiled fast path (:mod:`repro.nat.compiled`) must be *invisible*:
a closure's output is byte-for-byte what the slow path would have
emitted, for every packet shape the flow can carry — payload lengths,
TTLs, and UDP's "checksum disabled" sentinel included. This file
proves that property three ways: a hypothesis sweep over randomized
traffic, an injected miscompilation that the learn-time
self-verification must reject, and the invalidation paths (expiry,
eviction, restore) that must drop a closure before it can fire stale.
"""

from hypothesis import given, settings, strategies as st

from repro.nat.compiled import compile_action, raw_flow_key
from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat
from repro.nat.vignat import VigNat
from repro.packets.builder import make_tcp_packet, make_udp_packet
from repro.packets.headers import Packet
from repro.packets.lazy import LazyPacket


def _raw(nf, packet, now):
    """One frame through the raw burst path -> [(wire, device), ...]."""
    return nf.process_raw_burst(
        [(bytearray(packet.wire_bytes()), packet.device)], now
    )[0]


def _slow(nf, packet, now):
    """The same frame through the object slow path, rendered alike."""
    return [
        (out.wire_bytes(), out.device)
        for out in nf.process(packet.clone(), now)
    ]


def _flow_packets(proto, sport, payloads_ttls, zero_checksum):
    """Packets of one flow varying every non-key field the wire allows."""
    packets = []
    for payload, ttl in payloads_ttls:
        if proto == "udp":
            packet = make_udp_packet(
                "10.0.0.5", "8.8.8.8", sport, 53,
                payload=payload, ttl=ttl, device=0,
            )
            if zero_checksum:
                packet.l4.checksum = 0
        else:
            packet = make_tcp_packet(
                "10.0.0.5", "198.18.0.9", sport, 443,
                payload=payload, ttl=ttl, device=0,
            )
        packets.append(packet)
    return packets


class TestCompiledByteIdentity:
    """Closure output == slow-path output, over randomized traffic."""

    @given(
        proto=st.sampled_from(["udp", "tcp"]),
        sport=st.integers(1_024, 65_000),
        payloads_ttls=st.lists(
            st.tuples(st.binary(min_size=0, max_size=64), st.integers(1, 255)),
            min_size=2,
            max_size=6,
        ),
        zero_checksum=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_compiled_matches_slow_path(
        self, proto, sport, payloads_ttls, zero_checksum
    ):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)), mode="compiled")
        slow = VigNat(NatConfig(max_flows=64))
        for t, packet in enumerate(
            _flow_packets(proto, sport, payloads_ttls, zero_checksum),
            start=1_000,
        ):
            assert _raw(fast, packet, t) == _slow(slow, packet, t)
        counters = fast.op_counters()
        assert counters["fastpath_compiles"] == 1
        assert counters["fastpath_compile_rejected"] == 0
        # Every packet after the learn miss ran the compiled closure.
        assert counters["fastpath_compiled_hits"] == len(payloads_ttls) - 1

    def test_zero_udp_checksum_stays_zero_through_closure(self):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)), mode="compiled")
        packet = make_udp_packet("10.0.0.5", "8.8.8.8", 4_000, 53, device=0)
        packet.l4.checksum = 0
        _raw(fast, packet, 1_000)  # learn + compile
        ((wire, _),) = _raw(fast, packet, 1_001)  # compiled hit
        assert fast.op_counters()["fastpath_compiled_hits"] == 1
        assert Packet.from_bytes(wire, 1).l4.checksum == 0

    def test_reply_direction_compiles_too(self):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)), mode="compiled")
        slow = VigNat(NatConfig(max_flows=64))
        out = make_udp_packet("10.0.0.5", "8.8.8.8", 4_000, 53, device=0)
        assert _raw(fast, out, 1_000) == _slow(slow, out, 1_000)
        ((wire, _),) = _raw(fast, out, 1_001)
        ext_port = Packet.from_bytes(wire, 1).l4.src_port
        reply = make_udp_packet(
            "8.8.8.8", NatConfig(max_flows=64).external_ip, 53, ext_port,
            device=1,
        )
        for t in (1_002, 1_003):
            assert _raw(fast, reply, t) == _slow(slow, reply, t)
        assert fast.op_counters()["fastpath_compiles"] == 2


class TestRawFlowKeyEquivalence:
    """raw_flow_key is LazyPacket.flow_key without the view object."""

    @given(
        proto=st.sampled_from(["udp", "tcp"]),
        sport=st.integers(1, 0xFFFF),
        payload=st.binary(min_size=0, max_size=48),
        device=st.integers(0, 3),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_lazy_packet(self, proto, sport, payload, device):
        make = make_udp_packet if proto == "udp" else make_tcp_packet
        packet = make(
            "10.0.0.5", "8.8.8.8", sport, 53, payload=payload, device=device
        )
        buf = bytearray(packet.wire_bytes())
        assert raw_flow_key(buf, device) == LazyPacket(buf, device).flow_key()

    def test_ineligible_frames_return_none(self):
        packet = make_udp_packet("10.0.0.5", "8.8.8.8", 4_000, 53, device=0)
        assert raw_flow_key(bytearray(b"\x00" * 10), 0) is None  # truncated
        arp = bytearray(packet.wire_bytes())
        arp[12:14] = b"\x08\x06"
        assert raw_flow_key(arp, 0) is None  # not IPv4
        frag = bytearray(packet.wire_bytes())
        frag[21] = 8
        assert raw_flow_key(frag, 0) is None  # fragment offset
        icmp = bytearray(packet.wire_bytes())
        icmp[23] = 1
        assert raw_flow_key(icmp, 0) is None  # not TCP/UDP


class TestLearnTimeVerificationRejectsMiscompiles:
    """An injected compiler bug must never reach the data path."""

    def _learn_with_bad_compiler(self, monkeypatch, corrupt):
        fast = FastPathNat(VigNat(NatConfig(max_flows=64)), mode="compiled")
        slow = VigNat(NatConfig(max_flows=64))

        def miscompile(key, action):
            compiled = compile_action(key, action)
            corrupt(compiled)
            return compiled

        monkeypatch.setattr("repro.nat.fastpath.compile_action", miscompile)
        packet = make_udp_packet("10.0.0.5", "8.8.8.8", 4_000, 53, device=0)
        for t in (1_000, 1_001, 1_002):
            assert _raw(fast, packet, t) == _slow(slow, packet, t)
        return fast

    def test_wrong_bytes_rejected(self, monkeypatch):
        def corrupt(compiled):
            real = compiled.apply_one
            compiled.apply_one = lambda buf: b"\x00" * len(real(buf))

        fast = self._learn_with_bad_compiler(monkeypatch, corrupt)
        counters = fast.op_counters()
        assert counters["fastpath_compile_rejected"] >= 1
        assert counters["fastpath_compiles"] == 0
        assert counters["fastpath_compiled_hits"] == 0
        assert fast.compiled_size == 0
        # The replay cache still serves the flow correctly.
        assert counters["fastpath_hits"] >= 1

    def test_wrong_device_rejected(self, monkeypatch):
        def corrupt(compiled):
            compiled.out_device ^= 1

        fast = self._learn_with_bad_compiler(monkeypatch, corrupt)
        assert fast.op_counters()["fastpath_compile_rejected"] >= 1
        assert fast.compiled_size == 0


class TestStaleClosureInvalidation:
    """Expiry, eviction and restore must drop compiled closures."""

    def test_expiry_drops_closure_before_it_can_fire(self):
        cfg = NatConfig(max_flows=64, expiration_time=10)
        fast = FastPathNat(VigNat(cfg), mode="compiled")
        slow = VigNat(NatConfig(max_flows=64, expiration_time=10))
        packet = make_udp_packet("10.0.0.5", "8.8.8.8", 4_000, 53, device=0)
        for t in (0, 1):
            assert _raw(fast, packet, t) == _slow(slow, packet, t)
        hits_before = fast.op_counters()["fastpath_compiled_hits"]
        assert hits_before == 1
        # Far past expiry the flow is freed. A competing flow then takes
        # the freed external port, so a stale closure would emit the
        # *wrong* translation — the slow-path differential catches it.
        rival = make_udp_packet("10.0.0.6", "8.8.8.8", 5_000, 53, device=0)
        assert _raw(fast, rival, 1_000) == _slow(slow, rival, 1_000)
        assert _raw(fast, packet, 1_001) == _slow(slow, packet, 1_001)
        counters = fast.op_counters()
        assert counters["fastpath_invalidations"] >= 1
        # The stale closure never fired: no compiled hit between the
        # expiry and the re-learn.
        assert counters["fastpath_compiled_hits"] == hits_before

    def test_eviction_drops_closure_with_cache_entry(self):
        fast = FastPathNat(
            VigNat(NatConfig(max_flows=64)), max_entries=2, mode="compiled"
        )
        for i in range(6):
            packet = make_udp_packet(
                "10.0.0.5", "8.8.8.8", 4_000 + i, 53, device=0
            )
            _raw(fast, packet, 1_000 + i)
        counters = fast.op_counters()
        assert counters["fastpath_evictions"] >= 1
        assert fast.cache_size <= 2
        # compiled ⊆ cached: an evicted flow keeps no closure behind.
        assert fast.compiled_size <= fast.cache_size

    def test_warm_after_restore_installs_closures(self):
        # The promoted-standby path: a fresh NF restores a checkpoint
        # and warm() pre-compiles every restored flow, so the first
        # post-failover packets run the compiled path immediately.
        cfg = NatConfig(max_flows=64)
        primary = VigNat(cfg)
        slow = VigNat(cfg)
        for i in range(4):
            packet = make_udp_packet(
                "10.0.0.5", "8.8.8.8", 4_000 + i, 53, device=0
            )
            primary.process(packet.clone(), 1_000)
            slow.process(packet.clone(), 1_000)
        standby = VigNat(cfg)
        standby.restore_state(primary.checkpoint_state())
        fast = FastPathNat(standby, mode="compiled")
        warmed = fast.warm()
        assert warmed == 8  # both directions of all four flows
        assert fast.compiled_size == warmed
        assert fast.op_counters()["fastpath_compiles"] == warmed
        packet = make_udp_packet("10.0.0.5", "8.8.8.8", 4_001, 53, device=0)
        assert _raw(fast, packet, 2_000) == _slow(slow, packet, 2_000)
        counters = fast.op_counters()
        assert counters["fastpath_compiled_hits"] == 1
        assert counters["fastpath_misses"] == 0
