"""Stateful hypothesis testing of the open-addressing map.

A rule-based state machine drives the map through arbitrary interleaved
operation schedules — including adversarial constant-hash instances that
force every key down one probe chain — checking refinement against a
dict and the chain-counter invariant after every step.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.libvig.map import Map


class MapMachine(RuleBasedStateMachine):
    """Refinement machine: concrete Map vs dict, under collisions."""

    keys = st.integers(0, 20)

    @initialize(
        capacity=st.integers(2, 12),
        collide=st.booleans(),
    )
    def setup(self, capacity, collide):
        hash_fn = (lambda key: 0) if collide else None
        self.concrete = Map(capacity, hash_fn=hash_fn)
        self.shadow = {}
        self.capacity = capacity

    @rule(key=keys, value=st.integers(0, 1000))
    def put(self, key, value):
        if key not in self.shadow and len(self.shadow) < self.capacity:
            self.concrete.put(key, value)
            self.shadow[key] = value

    @rule(key=keys)
    def erase(self, key):
        if key in self.shadow:
            assert self.concrete.erase(key) == self.shadow.pop(key)

    @rule(key=keys)
    def get(self, key):
        assert self.concrete.get(key) == self.shadow.get(key)

    @rule(key=keys, value=st.integers(0, 1000))
    def reinsert(self, key, value):
        """Erase-then-put at the same key stresses chain unwinding."""
        if key in self.shadow:
            self.concrete.erase(key)
            self.concrete.put(key, value)
            self.shadow[key] = value

    @invariant()
    def size_matches(self):
        if hasattr(self, "shadow"):
            assert self.concrete.size() == len(self.shadow)

    @invariant()
    def contents_match(self):
        if hasattr(self, "shadow"):
            assert dict(self.concrete.items()) == self.shadow

    @invariant()
    def chain_counters_never_negative(self):
        if hasattr(self, "concrete"):
            assert all(c >= 0 for c in self.concrete._chains)

    @invariant()
    def all_keys_reachable(self):
        """The load-bearing invariant: no key is ever stranded behind a
        free slot with a zero chain counter."""
        if hasattr(self, "shadow"):
            for key in self.shadow:
                assert self.concrete.has(key), f"key {key} stranded"


MapMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestMapMachine = MapMachine.TestCase


def test_chain_counters_zero_when_empty():
    """After any churn, emptying the map leaves no residual counters."""
    m = Map(6, hash_fn=lambda k: 0)
    for round_no in range(3):
        for i in range(6):
            m.put(i, i)
        for i in (3, 0, 5, 1, 4, 2):
            m.erase(i)
    assert all(c == 0 for c in m._chains)


def test_pathological_interleaving_regression():
    """A specific schedule that once stranded a key in development."""
    m = Map(4, hash_fn=lambda k: 0)
    m.put("a", 1)
    m.put("b", 2)
    m.put("c", 3)
    m.erase("a")
    m.put("d", 4)  # lands in a's old slot, chain counters must cover c
    m.erase("b")
    assert m.get("c") == 3
    assert m.get("d") == 4
