"""Vector, batcher, port allocator, expirator, nf_time, hash table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.libvig.batcher import Batcher
from repro.libvig.double_chain import DoubleChain
from repro.libvig.double_map import DoubleMap
from repro.libvig.errors import CapacityError
from repro.libvig.expirator import expire_items
from repro.libvig.hash_table import ChainingHashTable
from repro.libvig.nf_time import MonotonicClock, SimulatedClock
from repro.libvig.port_allocator import PortAllocator, PortExhaustion
from repro.libvig.vector import OwnershipError, Vector


class TestVector:
    def test_borrow_give_back(self):
        v = Vector(4, init=lambda i: i * 2)
        item = v.borrow(1)
        assert item == 2
        v.give_back(1, 99)
        assert v.get(1) == 99

    def test_double_borrow_rejected(self):
        v = Vector(4)
        v.borrow(0)
        with pytest.raises(OwnershipError):
            v.borrow(0)

    def test_give_back_without_borrow_rejected(self):
        v = Vector(4)
        with pytest.raises(OwnershipError):
            v.give_back(0, 1)

    def test_read_of_borrowed_slot_rejected(self):
        v = Vector(4)
        v.borrow(2)
        with pytest.raises(OwnershipError):
            v.get(2)

    def test_outstanding_borrows(self):
        v = Vector(4)
        v.borrow(0)
        v.borrow(1)
        assert v.outstanding_borrows() == 2
        v.give_back(0, None)
        assert v.outstanding_borrows() == 1

    def test_bounds(self):
        v = Vector(4)
        with pytest.raises(IndexError):
            v.borrow(4)


class TestBatcher:
    def test_take_returns_in_order(self):
        b = Batcher(3)
        b.push(1)
        b.push(2)
        assert b.take() == [1, 2]
        assert b.empty()

    def test_full_rejects_push(self):
        b = Batcher(2)
        b.push(1)
        b.push(2)
        assert b.full()
        with pytest.raises(CapacityError):
            b.push(3)

    def test_take_resets(self):
        b = Batcher(2)
        b.push(1)
        b.push(2)
        b.take()
        b.push(3)  # must not raise
        assert len(b) == 1


class TestPortAllocator:
    def test_allocates_distinct_ports(self):
        alloc = PortAllocator(1000, 5)
        ports = {alloc.allocate() for _ in range(5)}
        assert ports == set(range(1000, 1005))

    def test_exhaustion(self):
        alloc = PortAllocator(1000, 1)
        alloc.allocate()
        with pytest.raises(PortExhaustion):
            alloc.allocate()

    def test_release_enables_reuse(self):
        alloc = PortAllocator(1000, 1)
        port = alloc.allocate()
        alloc.release(port)
        assert alloc.allocate() == port

    def test_release_unallocated_raises(self):
        alloc = PortAllocator(1000, 4)
        with pytest.raises(KeyError):
            alloc.release(1000)

    def test_out_of_range_rejected(self):
        alloc = PortAllocator(1000, 4)
        with pytest.raises(ValueError):
            alloc.is_allocated(999)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            PortAllocator(65530, 10)  # crosses 65535

    def test_available(self):
        alloc = PortAllocator(1, 10)
        alloc.allocate()
        assert alloc.available() == 9


class TestExpirator:
    def _pair(self, capacity=8):
        dmap = DoubleMap(capacity, key_a_of=lambda v: v[0], key_b_of=lambda v: v[1])
        chain = DoubleChain(capacity)
        return dmap, chain

    def test_expires_only_stale(self):
        dmap, chain = self._pair()
        for t in (10, 20, 30):
            index = chain.allocate_new_index(t)
            dmap.put(index, (f"a{index}", f"b{index}", t))
        count = expire_items(chain, dmap, 25)
        assert count == 2
        assert dmap.size() == 1
        assert chain.size() == 1

    def test_noop_when_all_fresh(self):
        dmap, chain = self._pair()
        index = chain.allocate_new_index(100)
        dmap.put(index, ("a", "b", 0))
        assert expire_items(chain, dmap, 50) == 0
        assert dmap.size() == 1

    def test_chain_and_map_stay_consistent(self):
        dmap, chain = self._pair()
        for t in range(8):
            index = chain.allocate_new_index(t)
            dmap.put(index, (f"a{index}", f"b{index}", t))
        expire_items(chain, dmap, 4)
        assert dmap.size() == chain.size() == 4
        for index, value in dmap.items():
            assert chain.is_index_allocated(index)


class TestClocks:
    def test_simulated_clock_advances(self):
        clock = SimulatedClock()
        assert clock.now() == 0
        clock.advance(100)
        assert clock.now() == 100

    def test_simulated_clock_rejects_regression(self):
        clock = SimulatedClock(100)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.set(50)

    def test_monotonic_clock_non_decreasing(self):
        clock = MonotonicClock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestChainingHashTable:
    def test_put_get_overwrite(self):
        t = ChainingHashTable(8)
        t.put("k", 1)
        t.put("k", 2)
        assert t.get("k") == 2
        assert t.size() == 1

    def test_erase(self):
        t = ChainingHashTable(8)
        t.put("k", 1)
        assert t.erase("k") == 1
        with pytest.raises(KeyError):
            t.erase("k")

    def test_unbounded_growth(self):
        """Unlike libVig's map, chains grow without limit."""
        t = ChainingHashTable(2)
        for i in range(100):
            t.put(i, i)
        assert t.size() == 100
        assert t.longest_chain() >= 50

    def test_collisions_resolved(self):
        t = ChainingHashTable(4, hash_fn=lambda k: 0)
        for i in range(10):
            t.put(i, i * 2)
        for i in range(10):
            assert t.get(i) == i * 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 10)), max_size=40))
    def test_refinement_against_dict(self, ops):
        t = ChainingHashTable(4)
        shadow = {}
        for is_put, key in ops:
            if is_put:
                t.put(key, key)
                shadow[key] = key
            elif key in shadow:
                t.erase(key)
                del shadow[key]
            assert t.get(key) == shadow.get(key)
            assert t.size() == len(shadow)
