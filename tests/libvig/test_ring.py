"""Ring buffer: FIFO semantics, constraint enforcement, contracts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.libvig.contracts import ContractViolation
from repro.libvig.errors import CapacityError
from repro.libvig.ring import Ring


class TestFifoSemantics:
    def test_push_pop_order(self):
        ring = Ring(4)
        for i in range(4):
            ring.push_back(i)
        assert [ring.pop_front() for _ in range(4)] == [0, 1, 2, 3]

    def test_interleaved_wraparound(self):
        ring = Ring(3)
        ring.push_back("a")
        ring.push_back("b")
        assert ring.pop_front() == "a"
        ring.push_back("c")
        ring.push_back("d")  # wraps around the array boundary
        assert [ring.pop_front() for _ in range(3)] == ["b", "c", "d"]

    def test_full_empty_flags(self):
        ring = Ring(2)
        assert ring.empty() and not ring.full()
        ring.push_back(1)
        assert not ring.empty() and not ring.full()
        ring.push_back(2)
        assert ring.full()

    def test_len(self):
        ring = Ring(4)
        ring.push_back(1)
        ring.push_back(2)
        assert len(ring) == 2

    def test_push_full_raises(self):
        ring = Ring(1)
        ring.push_back(1)
        with pytest.raises(CapacityError):
            ring.push_back(2)

    def test_pop_empty_raises(self):
        ring = Ring(1)
        with pytest.raises(IndexError):
            ring.pop_front()


class TestConstraint:
    """The §3 packet constraint: pushed items must satisfy the predicate."""

    def test_constraint_enforced_on_push(self):
        ring = Ring(4, constraint=lambda port: port != 9)
        ring.push_back(80)
        with pytest.raises(ValueError):
            ring.push_back(9)

    def test_popped_items_satisfy_constraint(self):
        ring = Ring(4, constraint=lambda port: port != 9)
        for port in (80, 443, 53):
            ring.push_back(port)
        while not ring.empty():
            assert ring.pop_front() != 9

    def test_constraint_contract(self, contracts):
        ring = Ring(4, constraint=lambda port: port != 9)
        with pytest.raises((ContractViolation, ValueError)):
            ring.push_back(9)


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(st.one_of(st.just("pop"), st.integers(0, 100)), max_size=60)
)
def test_refinement_against_abstract_ring(ops):
    """The ring commutes with the abstract bounded FIFO (P3)."""
    ring = Ring(5)
    shadow = []
    for op in ops:
        if op == "pop":
            if shadow:
                assert ring.pop_front() == shadow.pop(0)
        else:
            if len(shadow) < 5:
                ring.push_back(op)
                shadow.append(op)
        assert list(ring._abstract_state().items) == shadow
        assert ring.full() == (len(shadow) == 5)
        assert ring.empty() == (not shadow)
