"""Double-chain allocator: LRU ordering, expiration, refinement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.libvig.abstract import chain_times_nondecreasing
from repro.libvig.contracts import ContractViolation
from repro.libvig.double_chain import DoubleChain, TimeRegression


class TestAllocation:
    def test_allocate_returns_distinct_indexes(self):
        chain = DoubleChain(4)
        indexes = [chain.allocate_new_index(i) for i in range(4)]
        assert sorted(indexes) == [0, 1, 2, 3]

    def test_allocate_when_full_returns_none(self):
        chain = DoubleChain(2)
        chain.allocate_new_index(0)
        chain.allocate_new_index(1)
        assert chain.allocate_new_index(2) is None

    def test_is_index_allocated(self):
        chain = DoubleChain(4)
        index = chain.allocate_new_index(10)
        assert chain.is_index_allocated(index)
        assert not chain.is_index_allocated((index + 1) % 4)

    def test_free_then_reallocate(self):
        chain = DoubleChain(2)
        a = chain.allocate_new_index(0)
        chain.free_index(a)
        assert not chain.is_index_allocated(a)
        b = chain.allocate_new_index(1)
        assert b == a  # LIFO free list reuses the slot

    def test_size_tracks_allocations(self):
        chain = DoubleChain(8)
        for i in range(5):
            chain.allocate_new_index(i)
        assert chain.size() == 5

    def test_index_bounds_checked(self):
        chain = DoubleChain(4)
        with pytest.raises(IndexError):
            chain.is_index_allocated(4)
        with pytest.raises(IndexError):
            chain.is_index_allocated(-1)


class TestLruOrdering:
    def test_oldest_is_first_allocated(self):
        chain = DoubleChain(4)
        first = chain.allocate_new_index(10)
        chain.allocate_new_index(20)
        assert chain.get_oldest() == (first, 10)

    def test_rejuvenate_moves_to_back(self):
        chain = DoubleChain(4)
        a = chain.allocate_new_index(10)
        b = chain.allocate_new_index(20)
        chain.rejuvenate_index(a, 30)
        assert chain.get_oldest() == (b, 20)

    def test_rejuvenate_unallocated_raises(self):
        chain = DoubleChain(4)
        with pytest.raises(KeyError):
            chain.rejuvenate_index(0, 10)

    def test_time_regression_rejected(self):
        chain = DoubleChain(4)
        chain.allocate_new_index(100)
        with pytest.raises(TimeRegression):
            chain.allocate_new_index(50)
        with pytest.raises(TimeRegression):
            chain.rejuvenate_index(0, 50)

    def test_timestamp_of(self):
        chain = DoubleChain(4)
        index = chain.allocate_new_index(123)
        assert chain.timestamp_of(index) == 123
        chain.rejuvenate_index(index, 456)
        assert chain.timestamp_of(index) == 456


class TestExpiration:
    def test_expire_one_frees_oldest_stale(self):
        chain = DoubleChain(4)
        a = chain.allocate_new_index(10)
        chain.allocate_new_index(20)
        assert chain.expire_one_index(15) == a
        assert not chain.is_index_allocated(a)

    def test_expire_stops_at_fresh_entries(self):
        chain = DoubleChain(4)
        chain.allocate_new_index(10)
        assert chain.expire_one_index(10) is None  # 10 >= 10: still fresh
        assert chain.expire_one_index(11) == 0

    def test_expire_empty_returns_none(self):
        chain = DoubleChain(4)
        assert chain.expire_one_index(100) is None

    def test_expire_cost_proportional_to_expired(self):
        """Expiring from a big chain touches only the stale front."""
        chain = DoubleChain(1000)
        for i in range(1000):
            chain.allocate_new_index(i)
        expired = []
        while True:
            index = chain.expire_one_index(10)
            if index is None:
                break
            expired.append(index)
        assert len(expired) == 10
        assert chain.size() == 990

    def test_rejuvenation_prevents_expiry(self):
        chain = DoubleChain(4)
        a = chain.allocate_new_index(10)
        chain.rejuvenate_index(a, 100)
        assert chain.expire_one_index(50) is None


class TestCheckpointRestore:
    @staticmethod
    def _churned_chain():
        # Allocate 0..3, free 0 then 2: the free list is now LIFO-ordered
        # [2, 0] — not the ascending order a fresh chain starts with.
        chain = DoubleChain(4)
        for t in range(4):
            chain.allocate_new_index(t)
        chain.free_index(0)
        chain.free_index(2)
        return chain

    def test_free_list_reports_pop_order(self):
        chain = self._churned_chain()
        assert chain.free_list() == (2, 0)

    def test_restore_with_free_list_replays_allocations(self):
        original = self._churned_chain()
        copy = DoubleChain(4)
        copy.restore_cells(original.cells(), original.free_list())
        # The copy now hands out indexes in exactly the original's order.
        assert copy.allocate_new_index(10) == original.allocate_new_index(10)
        assert copy.allocate_new_index(11) == original.allocate_new_index(11)

    def test_restore_without_free_list_is_ascending(self):
        copy = DoubleChain(4)
        copy.restore_cells(self._churned_chain().cells())
        assert copy.free_list() == (0, 2)  # ascending over the vacant set

    def test_restore_rejects_inconsistent_free_list(self):
        chain = DoubleChain(4)
        with pytest.raises(ValueError, match="free list"):
            chain.restore_cells([(1, 10)], [0, 2])  # 3 missing
        assert chain.size() == 0  # nothing half-applied


class TestContracts:
    def test_rejuvenate_contract(self, contracts):
        chain = DoubleChain(4)
        with pytest.raises((ContractViolation, KeyError)):
            chain.rejuvenate_index(1, 10)

    def test_allocate_contract_holds(self, contracts):
        chain = DoubleChain(2)
        chain.allocate_new_index(1)
        chain.allocate_new_index(2)
        assert chain.allocate_new_index(3) is None  # full: None, no violation


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "rejuv", "expire", "free"]), st.integers(0, 7), st.integers(0, 5)),
        max_size=50,
    )
)
def test_refinement_against_abstract_chain(ops):
    """The chain commutes with the abstract age-ordered list (P3)."""
    chain = DoubleChain(8)
    clock = 0
    shadow = {}  # index -> timestamp
    order = []  # indexes, oldest first
    for op, index, dt in ops:
        clock += dt
        if op == "alloc":
            got = chain.allocate_new_index(clock)
            if len(shadow) < 8:
                assert got is not None
                shadow[got] = clock
                order.append(got)
            else:
                assert got is None
        elif op == "rejuv" and index in shadow:
            chain.rejuvenate_index(index, clock)
            shadow[index] = clock
            order.remove(index)
            order.append(index)
        elif op == "expire":
            expired = chain.expire_one_index(clock - 3)
            stale = [i for i in order if shadow[i] < clock - 3]
            if stale:
                assert expired == order[0]
                del shadow[expired]
                order.pop(0)
            else:
                assert expired is None
        elif op == "free" and index in shadow:
            chain.free_index(index)
            del shadow[index]
            order.remove(index)
        state = chain._abstract_state()
        assert list(state.allocated()) == order
        assert {i: t for i, t in state.cells} == shadow
        assert chain_times_nondecreasing(state.cells)
