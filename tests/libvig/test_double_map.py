"""Double-keyed map: both key directions, index binding, contracts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.libvig.contracts import ContractViolation
from repro.libvig.double_map import DoubleMap


def _dmap(capacity=8):
    # Values are (key_a, key_b, payload) triples.
    return DoubleMap(
        capacity,
        key_a_of=lambda v: v[0],
        key_b_of=lambda v: v[1],
    )


class TestLookups:
    def test_put_then_get_by_both_keys(self):
        d = _dmap()
        d.put(3, ("alpha", "beta", 42))
        assert d.get_by_a("alpha") == 3
        assert d.get_by_b("beta") == 3
        assert d.get_value(3) == ("alpha", "beta", 42)

    def test_missing_keys_return_none(self):
        d = _dmap()
        assert d.get_by_a("ghost") is None
        assert d.get_by_b("ghost") is None

    def test_keys_are_independent_spaces(self):
        d = _dmap()
        d.put(0, ("same", "other", 1))
        # "same" exists only in the A space.
        assert d.get_by_b("same") is None

    def test_index_occupied(self):
        d = _dmap()
        d.put(2, ("a", "b", 0))
        assert d.index_occupied(2)
        assert not d.index_occupied(3)

    def test_get_value_vacant_raises(self):
        d = _dmap()
        with pytest.raises(KeyError):
            d.get_value(5)

    def test_index_bounds(self):
        d = _dmap(4)
        with pytest.raises(IndexError):
            d.put(4, ("a", "b", 0))
        with pytest.raises(IndexError):
            d.get_value(-1)


class TestUpdates:
    def test_erase_removes_both_keys(self):
        d = _dmap()
        d.put(1, ("a", "b", 7))
        assert d.erase(1) == ("a", "b", 7)
        assert d.get_by_a("a") is None
        assert d.get_by_b("b") is None
        assert not d.index_occupied(1)

    def test_erase_vacant_raises(self):
        d = _dmap()
        with pytest.raises(KeyError):
            d.erase(0)

    def test_double_put_same_index_raises(self):
        d = _dmap()
        d.put(0, ("a", "b", 1))
        with pytest.raises(KeyError):
            d.put(0, ("c", "d", 2))

    def test_duplicate_key_raises(self):
        d = _dmap()
        d.put(0, ("a", "b", 1))
        with pytest.raises(KeyError):
            d.put(1, ("a", "z", 2))
        with pytest.raises(KeyError):
            d.put(1, ("z", "b", 2))

    def test_reuse_index_after_erase(self):
        d = _dmap()
        d.put(0, ("a", "b", 1))
        d.erase(0)
        d.put(0, ("c", "d", 2))
        assert d.get_by_a("c") == 0

    def test_size_and_items(self):
        d = _dmap()
        d.put(0, ("a", "b", 1))
        d.put(5, ("c", "d", 2))
        assert d.size() == 2
        assert [i for i, _ in d.items()] == [0, 5]

    def test_full(self):
        d = _dmap(2)
        d.put(0, ("a", "b", 1))
        assert not d.full()
        d.put(1, ("c", "d", 2))
        assert d.full()


class TestContracts:
    def test_put_occupied_contract(self, contracts):
        d = _dmap()
        d.put(0, ("a", "b", 1))
        with pytest.raises((ContractViolation, KeyError)):
            d.put(0, ("c", "d", 2))

    def test_erase_vacant_contract(self, contracts):
        d = _dmap()
        with pytest.raises((ContractViolation, KeyError)):
            d.erase(3)

    def test_consistent_ops_pass_contracts(self, contracts):
        d = _dmap()
        d.put(0, ("a", "b", 1))
        d.put(1, ("c", "d", 2))
        d.erase(0)
        d.put(0, ("e", "f", 3))
        assert d.size() == 2


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "erase", "get_a", "get_b"]),
            st.integers(0, 5),
        ),
        max_size=40,
    )
)
def test_refinement_against_abstract_double_map(ops):
    """Concrete double-map commutes with the abstract model (P3)."""
    d = _dmap(6)
    values = {}  # index -> value
    by_a = {}
    by_b = {}
    for op, index in ops:
        key_a, key_b = f"a{index}", f"b{index}"
        if op == "put":
            if index not in values and key_a not in by_a and key_b not in by_b:
                d.put(index, (key_a, key_b, index))
                values[index] = (key_a, key_b, index)
                by_a[key_a] = index
                by_b[key_b] = index
        elif op == "erase":
            if index in values:
                value = d.erase(index)
                del by_a[value[0]]
                del by_b[value[1]]
                del values[index]
        elif op == "get_a":
            assert d.get_by_a(key_a) == by_a.get(key_a)
        else:
            assert d.get_by_b(key_b) == by_b.get(key_b)
        state = d._abstract_state()
        assert dict(state.values) == values
        assert dict(state.by_a) == by_a
        assert dict(state.by_b) == by_b
