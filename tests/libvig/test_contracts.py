"""The runtime contract machinery itself."""

import pytest

from repro.libvig.contracts import (
    ContractViolation,
    checked,
    contract,
    contracts_enabled,
    disable_contracts,
    enable_contracts,
)


class Counter:
    """A tiny contracted class for exercising the decorator."""

    def __init__(self) -> None:
        self.value = 0

    def _abstract_state(self) -> int:
        return self.value

    @contract(
        requires=lambda self, amount: amount >= 0,
        ensures=lambda old, result, self, amount: self.value == old + amount,
    )
    def add(self, amount: int) -> None:
        self.value += amount

    @contract(
        requires=lambda self: self.value > 0,
        ensures=lambda old, result, self: result == old,
    )
    def read_then_zero(self) -> int:
        result = self.value
        self.value = 0
        return result

    @contract(ensures=lambda old, result, self: self.value == old + 1)
    def buggy_increment(self) -> None:
        self.value += 2  # violates its own postcondition


class TestEnablement:
    def test_disabled_by_default(self):
        assert not contracts_enabled()
        Counter().add(-5)  # no violation raised when disabled

    def test_enable_disable(self):
        enable_contracts()
        assert contracts_enabled()
        disable_contracts()
        assert not contracts_enabled()

    def test_checked_context_restores(self):
        assert not contracts_enabled()
        with checked():
            assert contracts_enabled()
        assert not contracts_enabled()

    def test_checked_restores_on_exception(self):
        try:
            with checked():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not contracts_enabled()


class TestEnforcement:
    def test_requires_violation(self, contracts):
        with pytest.raises(ContractViolation) as excinfo:
            Counter().add(-1)
        assert excinfo.value.kind == "requires"

    def test_ensures_violation(self, contracts):
        with pytest.raises(ContractViolation) as excinfo:
            Counter().buggy_increment()
        assert excinfo.value.kind == "ensures"

    def test_passing_call(self, contracts):
        counter = Counter()
        counter.add(5)
        assert counter.read_then_zero() == 5

    def test_requires_checked_before_mutation(self, contracts):
        counter = Counter()
        with pytest.raises(ContractViolation):
            counter.read_then_zero()  # value == 0 violates requires
        assert counter.value == 0  # body never ran

    def test_introspection_attributes(self):
        assert Counter.add.__contract_requires__ is not None
        assert Counter.add.__contract_ensures__ is not None
