"""Open-addressing map: semantics, chain counters, contracts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.libvig.errors import CapacityError
from repro.libvig.contracts import ContractViolation
from repro.libvig.map import Map


class TestBasicOperations:
    def test_put_then_get(self):
        m = Map(8)
        m.put("key", 42)
        assert m.get("key") == 42
        assert m.has("key")
        assert m.size() == 1

    def test_get_missing_returns_default(self):
        m = Map(8)
        assert m.get("missing") is None
        assert m.get("missing", -1) == -1
        assert not m.has("missing")

    def test_erase_returns_value(self):
        m = Map(8)
        m.put("key", 42)
        assert m.erase("key") == 42
        assert not m.has("key")
        assert m.size() == 0

    def test_erase_missing_raises(self):
        m = Map(8)
        with pytest.raises(KeyError):
            m.erase("missing")

    def test_items_iterates_live_entries(self):
        m = Map(8)
        for i in range(4):
            m.put(i, i * 10)
        assert dict(m.items()) == {0: 0, 1: 10, 2: 20, 3: 30}

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            Map(0)


class TestCapacity:
    def test_fill_to_capacity(self):
        m = Map(4)
        for i in range(4):
            m.put(i, i)
        assert m.full()
        assert m.size() == 4

    def test_put_beyond_capacity_raises(self):
        m = Map(4)
        for i in range(4):
            m.put(i, i)
        with pytest.raises(CapacityError):
            m.put(99, 99)

    def test_erase_frees_capacity(self):
        m = Map(2)
        m.put("a", 1)
        m.put("b", 2)
        m.erase("a")
        m.put("c", 3)  # must not raise
        assert m.get("c") == 3


class TestCollisionChains:
    """Force all keys into one probe sequence with a constant hash."""

    def _colliding_map(self, capacity=8):
        return Map(capacity, hash_fn=lambda key: 0)

    def test_colliding_inserts_all_retrievable(self):
        m = self._colliding_map()
        for i in range(5):
            m.put(f"k{i}", i)
        for i in range(5):
            assert m.get(f"k{i}") == i

    def test_erase_middle_of_chain_keeps_rest_reachable(self):
        m = self._colliding_map()
        for i in range(5):
            m.put(f"k{i}", i)
        m.erase("k2")
        for i in (0, 1, 3, 4):
            assert m.get(f"k{i}") == i, f"k{i} lost after erasing k2"
        assert m.get("k2") is None

    def test_reinsert_after_chain_erase(self):
        m = self._colliding_map()
        for i in range(5):
            m.put(f"k{i}", i)
        m.erase("k0")
        m.put("k0", 100)
        assert m.get("k0") == 100
        assert m.size() == 5

    def test_wraparound_probing(self):
        # Hash to the last slot so probing wraps to slot 0.
        m = Map(4, hash_fn=lambda key: 3)
        m.put("a", 1)
        m.put("b", 2)
        assert m.get("a") == 1
        assert m.get("b") == 2

    def test_chain_counters_unwind_on_erase(self):
        m = self._colliding_map()
        for i in range(5):
            m.put(f"k{i}", i)
        for i in range(5):
            m.erase(f"k{i}")
        assert all(c == 0 for c in m._chains), "leaked chain counters"

    def test_miss_probe_stops_at_free_zero_chain(self):
        m = self._colliding_map(capacity=64)
        m.put("a", 1)
        m.stats.reset()
        assert m.get("nonexistent") is None
        # One occupied slot traversed plus the free slot that ends it.
        assert m.stats.probes <= 3


class TestStats:
    def test_probe_counting(self):
        m = Map(8)
        m.put("a", 1)
        before = m.stats.probes
        m.get("a")
        assert m.stats.probes > before

    def test_reset(self):
        m = Map(8)
        m.put("a", 1)
        m.stats.reset()
        assert m.stats.probes == 0
        assert m.stats.puts == 0


class TestContracts:
    def test_put_duplicate_violates_contract(self, contracts):
        m = Map(8)
        m.put("a", 1)
        with pytest.raises(ContractViolation):
            m.put("a", 2)

    def test_erase_missing_violates_contract(self, contracts):
        m = Map(8)
        with pytest.raises(ContractViolation):
            m.erase("ghost")

    def test_put_full_violates_contract(self, contracts):
        m = Map(1)
        m.put("a", 1)
        with pytest.raises(ContractViolation):
            m.put("b", 2)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "erase", "get"]), st.integers(0, 15)),
        max_size=60,
    )
)
def test_refinement_against_abstract_map(ops):
    """The concrete map commutes with the abstract partial map (P3)."""
    concrete = Map(8)
    reference = {}
    for op, key in ops:
        if op == "put":
            if key not in reference and len(reference) < 8:
                concrete.put(key, key * 3)
                reference[key] = key * 3
        elif op == "erase":
            if key in reference:
                assert concrete.erase(key) == reference.pop(key)
        else:
            assert concrete.get(key) == reference.get(key)
        assert concrete.size() == len(reference)
        assert dict(concrete.items()) == reference
        state = concrete._abstract_state()
        assert dict(state.entries) == reference
