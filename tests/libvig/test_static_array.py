"""StaticArray: bounds checking, contracts, frame isolation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.libvig.contracts import ContractViolation
from repro.libvig.static_array import StaticArray


class TestBasics:
    def test_init_factory(self):
        array = StaticArray(4, init=lambda i: i * 10)
        assert list(array) == [0, 10, 20, 30]
        assert len(array) == 4

    def test_default_init_zero(self):
        assert list(StaticArray(3)) == [0, 0, 0]

    def test_get_set(self):
        array = StaticArray(4)
        array.set(2, 99)
        assert array.get(2) == 99
        assert array.get(0) == 0

    def test_bounds_enforced(self):
        array = StaticArray(4)
        with pytest.raises(IndexError):
            array.get(4)
        with pytest.raises(IndexError):
            array.set(-1, 0)

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            StaticArray(0)


class TestContracts:
    def test_out_of_bounds_violates_contract(self, contracts):
        array = StaticArray(4)
        with pytest.raises((ContractViolation, IndexError)):
            array.get(7)

    def test_set_frame_condition(self, contracts):
        """The ensures clause checks every OTHER cell is untouched."""
        array = StaticArray(8, init=lambda i: i)
        array.set(3, 42)
        assert list(array) == [0, 1, 2, 42, 4, 5, 6, 7]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 100)), max_size=30))
def test_refinement_against_list(writes):
    array = StaticArray(8)
    shadow = [0] * 8
    for index, value in writes:
        array.set(index, value)
        shadow[index] = value
        assert list(array) == shadow
        assert array.get(index) == value
