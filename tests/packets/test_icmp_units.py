"""ICMP message model unit tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.packets.headers import Ipv4Header, ParseError, PROTO_UDP
from repro.packets.icmp import (
    ERROR_TYPES,
    ICMP_DEST_UNREACHABLE,
    ICMP_ECHO_REQUEST,
    IcmpMessage,
)


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 255),
        st.integers(0, 255),
        st.integers(0, 0xFFFFFFFF),
        st.binary(max_size=64),
    )
    def test_pack_unpack(self, icmp_type, code, rest, body):
        message = IcmpMessage(icmp_type=icmp_type, code=code, rest=rest, body=body)
        parsed = IcmpMessage.unpack(message.pack(fill_checksum=True))
        assert parsed.icmp_type == icmp_type
        assert parsed.code == code
        assert parsed.rest == rest
        assert parsed.body == body
        assert parsed.checksum_valid()

    def test_truncated_rejected(self):
        with pytest.raises(ParseError):
            IcmpMessage.unpack(b"\x08\x00\x00")

    def test_corrupted_checksum_detected(self):
        raw = bytearray(IcmpMessage(icmp_type=ICMP_ECHO_REQUEST, body=b"x").pack())
        raw[-1] ^= 0xFF
        assert not IcmpMessage.unpack(bytes(raw)).checksum_valid()


class TestEmbedded:
    def _error_with_embedded(self):
        inner = Ipv4Header(protocol=PROTO_UDP, src_ip=1, dst_ip=2, total_length=28)
        body = inner.pack() + (1234).to_bytes(2, "big") + (53).to_bytes(2, "big") + b"tail"
        return IcmpMessage(icmp_type=ICMP_DEST_UNREACHABLE, code=3, body=body)

    def test_embedded_parse(self):
        message = self._error_with_embedded()
        inner_ip, sport, dport, trailing = message.embedded()
        assert (inner_ip.src_ip, inner_ip.dst_ip) == (1, 2)
        assert (sport, dport) == (1234, 53)
        assert trailing == b"tail"

    def test_non_error_has_no_embedded(self):
        echo = IcmpMessage(icmp_type=ICMP_ECHO_REQUEST, body=b"\x45" + b"\x00" * 30)
        assert echo.embedded() is None

    def test_short_body_has_no_embedded(self):
        stub = IcmpMessage(icmp_type=ICMP_DEST_UNREACHABLE, body=b"\x45\x00\x00")
        assert stub.embedded() is None

    def test_garbage_inner_header_rejected(self):
        stub = IcmpMessage(icmp_type=ICMP_DEST_UNREACHABLE, body=b"\x60" + b"\x00" * 30)
        assert stub.embedded() is None  # IPv6 version nibble

    def test_replace_embedded_roundtrip(self):
        message = self._error_with_embedded()
        inner_ip, sport, dport, trailing = message.embedded()
        inner_ip.src_ip = 99
        message.replace_embedded(inner_ip, 4321, dport, trailing)
        inner2, sport2, _dport2, trailing2 = message.embedded()
        assert inner2.src_ip == 99
        assert sport2 == 4321
        assert trailing2 == b"tail"
        assert inner2.header_checksum_valid()

    def test_error_types_catalogued(self):
        assert ICMP_DEST_UNREACHABLE in ERROR_TYPES
        assert ICMP_ECHO_REQUEST not in ERROR_TYPES
