"""Header pack/unpack round-tripping and parse robustness."""

import pytest
from hypothesis import given, strategies as st

from repro.packets.builder import make_tcp_packet, make_udp_packet
from repro.packets.headers import (
    ETHERTYPE_IPV4,
    PROTO_TCP,
    PROTO_UDP,
    EthernetHeader,
    Ipv4Header,
    Packet,
    ParseError,
    TcpHeader,
    UdpHeader,
)

ports = st.integers(0, 0xFFFF)
ips = st.integers(0, 0xFFFFFFFF)


class TestEthernetHeader:
    def test_roundtrip(self):
        header = EthernetHeader(dst=b"\x01" * 6, src=b"\x02" * 6, ethertype=0x0800)
        assert EthernetHeader.unpack(header.pack()) == header

    def test_size(self):
        assert len(EthernetHeader().pack()) == EthernetHeader.SIZE

    def test_truncated(self):
        with pytest.raises(ParseError):
            EthernetHeader.unpack(b"\x00" * 13)


class TestIpv4Header:
    @given(ips, ips, st.integers(0, 255), st.integers(0, 0xFFFF))
    def test_roundtrip(self, src, dst, ttl, ident):
        header = Ipv4Header(
            src_ip=src, dst_ip=dst, ttl=ttl, identification=ident, protocol=PROTO_UDP
        )
        raw = header.pack(fill_checksum=False)
        parsed = Ipv4Header.unpack(raw)
        assert parsed.src_ip == src
        assert parsed.dst_ip == dst
        assert parsed.ttl == ttl
        assert parsed.identification == ident

    def test_checksum_filled_and_valid(self):
        header = Ipv4Header(src_ip=1, dst_ip=2)
        raw = header.pack(fill_checksum=True)
        parsed = Ipv4Header.unpack(raw)
        assert parsed.header_checksum_valid()

    def test_rejects_ipv6(self):
        raw = bytearray(Ipv4Header().pack())
        raw[0] = 0x65
        with pytest.raises(ParseError):
            Ipv4Header.unpack(bytes(raw))

    def test_rejects_options(self):
        raw = bytearray(Ipv4Header().pack())
        raw[0] = 0x46  # IHL = 6
        with pytest.raises(ParseError):
            Ipv4Header.unpack(bytes(raw))

    def test_fragment_fields_roundtrip(self):
        header = Ipv4Header(flags=0b010, fragment_offset=1234)
        parsed = Ipv4Header.unpack(header.pack(fill_checksum=False))
        assert parsed.flags == 0b010
        assert parsed.fragment_offset == 1234


class TestL4Headers:
    @given(ports, ports, st.integers(0, 0xFFFFFFFF))
    def test_tcp_roundtrip(self, sport, dport, seq):
        header = TcpHeader(src_port=sport, dst_port=dport, seq=seq)
        assert TcpHeader.unpack(header.pack()) == header

    @given(ports, ports)
    def test_udp_roundtrip(self, sport, dport):
        header = UdpHeader(src_port=sport, dst_port=dport)
        assert UdpHeader.unpack(header.pack()) == header

    def test_truncated_tcp(self):
        with pytest.raises(ParseError):
            TcpHeader.unpack(b"\x00" * 10)

    def test_truncated_udp(self):
        with pytest.raises(ParseError):
            UdpHeader.unpack(b"\x00" * 7)


class TestPacket:
    @given(ips, ips, ports, ports, st.binary(max_size=64))
    def test_udp_packet_byte_roundtrip(self, src, dst, sport, dport, payload):
        packet = make_udp_packet(src, dst, sport, dport, payload=payload)
        raw = packet.to_bytes()
        parsed = Packet.from_bytes(raw, device=3)
        assert parsed.ipv4.src_ip == src
        assert parsed.ipv4.dst_ip == dst
        assert parsed.l4.src_port == sport
        assert parsed.l4.dst_port == dport
        assert parsed.payload == payload
        assert parsed.device == 3
        assert parsed.to_bytes() == raw

    @given(ips, ips, ports, ports, st.binary(max_size=64))
    def test_tcp_packet_checksums_valid(self, src, dst, sport, dport, payload):
        packet = make_tcp_packet(src, dst, sport, dport, payload=payload)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.ipv4.header_checksum_valid()
        assert parsed.l4_checksum_valid()

    def test_non_ipv4_stays_opaque(self):
        eth = EthernetHeader(ethertype=0x0806)
        packet = Packet(eth=eth, payload=b"arp-body")
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.ipv4 is None
        assert parsed.payload == b"arp-body"
        assert not parsed.is_tcpudp_ipv4()

    def test_icmp_has_no_l4(self):
        ipv4 = Ipv4Header(protocol=1, src_ip=1, dst_ip=2, total_length=24)
        packet = Packet(eth=EthernetHeader(), ipv4=ipv4, payload=b"ping")
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.ipv4 is not None
        assert parsed.l4 is None
        assert not parsed.is_tcpudp_ipv4()

    def test_clone_is_independent(self):
        packet = make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2)
        copy = packet.clone()
        copy.ipv4.src_ip = 42
        copy.l4.src_port = 99
        assert packet.ipv4.src_ip != 42
        assert packet.l4.src_port == 1

    def test_flow_properties_require_l4(self):
        packet = Packet(eth=EthernetHeader(ethertype=0x0806))
        with pytest.raises(ValueError):
            _ = packet.src_port

    def test_udp_length_field_tracks_payload(self):
        packet = make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload=b"x" * 10)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.l4.length == UdpHeader.SIZE + 10
        assert parsed.ipv4.total_length == Ipv4Header.SIZE + UdpHeader.SIZE + 10

    def test_builder_defaults_are_ipv4_tcpudp(self):
        udp = make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2)
        tcp = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
        assert udp.is_tcpudp_ipv4() and tcp.is_tcpudp_ipv4()
        assert udp.eth.ethertype == ETHERTYPE_IPV4
        assert tcp.ipv4.protocol == PROTO_TCP
