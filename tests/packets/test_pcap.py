"""pcap reading/writing."""

import io
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.packets.builder import make_tcp_packet, make_udp_packet
from repro.packets.pcap import (
    PcapError,
    read_pcap,
    read_pcap_file,
    write_pcap,
    write_pcap_file,
)


def frames(n=3):
    return [
        (
            i * 1_000 + 7,
            make_udp_packet("10.0.0.1", "10.0.0.2", 1000 + i, 53).to_bytes(),
        )
        for i in range(n)
    ]


class TestRoundTrip:
    def test_records_roundtrip(self):
        buffer = io.BytesIO()
        original = frames(5)
        assert write_pcap(buffer, original) == 5
        buffer.seek(0)
        parsed = list(read_pcap(buffer))
        assert [(r.timestamp_us, r.data) for r in parsed] == original

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "capture.pcap")
        original = frames(3)
        write_pcap_file(path, original)
        parsed = read_pcap_file(path)
        assert [(r.timestamp_us, r.data) for r in parsed] == original

    def test_records_reparse_as_packets(self):
        buffer = io.BytesIO()
        packet = make_tcp_packet("10.0.0.1", "8.8.8.8", 1234, 80, payload=b"GET /")
        write_pcap(buffer, [(42, packet.to_bytes())])
        buffer.seek(0)
        record = next(read_pcap(buffer))
        reparsed = record.packet(device=1)
        assert reparsed.l4.dst_port == 80
        assert reparsed.payload == b"GET /"
        assert reparsed.device == 1

    @given(st.lists(st.tuples(st.integers(0, 2**40), st.binary(min_size=14, max_size=100)), max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_frames_roundtrip(self, records):
        buffer = io.BytesIO()
        write_pcap(buffer, records)
        buffer.seek(0)
        parsed = [(r.timestamp_us, r.data) for r in read_pcap(buffer)]
        assert parsed == records

    def test_timestamp_seconds_encoding(self):
        buffer = io.BytesIO()
        write_pcap(buffer, [(3_500_000, b"\x00" * 14)])
        raw = buffer.getvalue()
        seconds, micros = struct.unpack_from("<II", raw, 24)
        assert (seconds, micros) == (3, 500_000)


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(PcapError):
            list(read_pcap(io.BytesIO(b"\x00" * 24)))

    def test_truncated_header(self):
        with pytest.raises(PcapError):
            list(read_pcap(io.BytesIO(b"\x00" * 10)))

    def test_truncated_record(self):
        buffer = io.BytesIO()
        write_pcap(buffer, [(0, b"\x00" * 20)])
        data = buffer.getvalue()[:-5]
        with pytest.raises(PcapError):
            list(read_pcap(io.BytesIO(data)))

    def test_snaplen_truncates(self):
        buffer = io.BytesIO()
        write_pcap(buffer, [(0, b"\xab" * 100)], snaplen=60)
        buffer.seek(0)
        record = next(read_pcap(buffer))
        assert len(record.data) == 60
