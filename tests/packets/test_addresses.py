"""Address conversion tests."""

import pytest

from repro.packets.addresses import ip_to_int, ip_to_str, mac_to_bytes, mac_to_str


class TestIpConversions:
    def test_roundtrip_simple(self):
        assert ip_to_str(ip_to_int("192.168.1.1")) == "192.168.1.1"

    def test_known_value(self):
        assert ip_to_int("10.0.0.1") == 0x0A000001

    def test_zero(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_str(0) == "0.0.0.0"

    def test_broadcast(self):
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    def test_octet_out_of_range(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.256")

    def test_wrong_part_count(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")

    def test_value_out_of_range(self):
        with pytest.raises(ValueError):
            ip_to_str(1 << 32)
        with pytest.raises(ValueError):
            ip_to_str(-1)

    def test_all_octets_distinct(self):
        assert ip_to_int("1.2.3.4") == 0x01020304


class TestMacConversions:
    def test_roundtrip(self):
        raw = mac_to_bytes("02:aa:bb:cc:dd:ee")
        assert mac_to_str(raw) == "02:aa:bb:cc:dd:ee"

    def test_length(self):
        assert len(mac_to_bytes("00:00:00:00:00:00")) == 6

    def test_invalid_format(self):
        with pytest.raises(ValueError):
            mac_to_bytes("00:00:00:00:00")

    def test_invalid_bytes_length(self):
        with pytest.raises(ValueError):
            mac_to_str(b"\x00" * 5)
