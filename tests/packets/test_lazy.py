"""Property tests: the zero-copy LazyPacket view against the header model.

Hypothesis drives random packets and random endpoint rewrites through
both implementations — LazyPacket patching the frame bytes in place with
RFC 1624 incremental deltas, and the header model rewriting fields then
serializing — and asserts the resulting frames are byte-identical, the
patched checksums included.
"""

from hypothesis import given, settings, strategies as st

from repro.nat.rewrite import rewrite_destination, rewrite_source
from repro.packets.builder import make_tcp_packet, make_udp_packet
from repro.packets.checksum import ipv4_header_checksum
from repro.packets.headers import PROTO_TCP, PROTO_UDP, Packet
from repro.packets.lazy import LazyPacket


def ips():
    return st.integers(1, 0xFFFFFFFE)


def ports():
    return st.integers(1, 0xFFFF)


def payloads():
    return st.binary(min_size=0, max_size=32)


@st.composite
def packets(draw, proto=None):
    proto = proto if proto is not None else draw(st.sampled_from([PROTO_TCP, PROTO_UDP]))
    make = make_udp_packet if proto == PROTO_UDP else make_tcp_packet
    return make(
        draw(ips()),
        draw(ips()),
        draw(ports()),
        draw(ports()),
        payload=draw(payloads()),
        device=draw(st.integers(0, 3)),
    )


class TestFieldViews:
    @given(packets())
    @settings(max_examples=60, deadline=None)
    def test_reads_agree_with_header_model(self, packet):
        view = LazyPacket(bytearray(packet.to_bytes()), packet.device)
        assert view.ethertype == packet.eth.ethertype
        assert view.protocol == packet.ipv4.protocol
        assert view.src_ip == packet.ipv4.src_ip
        assert view.dst_ip == packet.ipv4.dst_ip
        assert view.src_port == packet.l4.src_port
        assert view.dst_port == packet.l4.dst_port
        assert view.ip_checksum == packet.ipv4.checksum
        assert view.l4_checksum == packet.l4.checksum
        assert not view.is_fragment()

    @given(packets())
    @settings(max_examples=60, deadline=None)
    def test_flow_key_matches_parsed_key(self, packet):
        from repro.nat.fastpath import packet_flow_key

        view = LazyPacket(bytearray(packet.to_bytes()), packet.device)
        assert view.flow_key() == packet_flow_key(packet)

    def test_fragment_and_non_ipv4_are_ineligible(self):
        packet = make_udp_packet("10.0.0.1", "8.8.8.8", 1000, 53)
        packet.ipv4.fragment_offset = 64
        assert LazyPacket(bytearray(packet.to_bytes())).flow_key() is None

        packet = make_udp_packet("10.0.0.1", "8.8.8.8", 1000, 53)
        packet.ipv4.flags = 0x1  # more fragments
        assert LazyPacket(bytearray(packet.to_bytes())).flow_key() is None

        raw = bytearray(make_udp_packet("10.0.0.1", "8.8.8.8", 1000, 53).to_bytes())
        raw[12:14] = b"\x08\x06"  # ARP ethertype
        assert LazyPacket(raw).flow_key() is None

        assert LazyPacket(bytearray(10)).flow_key() is None


class TestRewriteEquivalence:
    @given(packets(), ips(), ports())
    @settings(max_examples=120, deadline=None)
    def test_set_src_matches_rewrite_source(self, packet, new_ip, new_port):
        view = LazyPacket(bytearray(packet.wire_bytes()), packet.device)
        view.set_src(new_ip, new_port)

        model = packet.clone()
        rewrite_source(model, new_ip, new_port)
        assert view.tobytes() == model.wire_bytes()

    @given(packets(), ips(), ports())
    @settings(max_examples=120, deadline=None)
    def test_set_dst_matches_rewrite_destination(self, packet, new_ip, new_port):
        view = LazyPacket(bytearray(packet.wire_bytes()), packet.device)
        view.set_dst(new_ip, new_port)

        model = packet.clone()
        rewrite_destination(model, new_ip, new_port)
        assert view.tobytes() == model.wire_bytes()

    @given(packets(), ips(), ports(), ips(), ports())
    @settings(max_examples=60, deadline=None)
    def test_double_rewrite_matches(self, packet, sip, sport, dip, dport):
        view = LazyPacket(bytearray(packet.wire_bytes()), packet.device)
        view.set_src(sip, sport)
        view.set_dst(dip, dport)

        model = packet.clone()
        rewrite_source(model, sip, sport)
        rewrite_destination(model, dip, dport)
        assert view.tobytes() == model.wire_bytes()


class TestChecksumIntegrity:
    @given(packets(), ips(), ports())
    @settings(max_examples=80, deadline=None)
    def test_patched_checksums_verify(self, packet, new_ip, new_port):
        """The incrementally patched frame still carries valid checksums."""
        view = LazyPacket(bytearray(packet.to_bytes()), packet.device)
        view.set_src(new_ip, new_port)
        raw = view.tobytes()

        ip_header = bytearray(raw[14:34])
        stored_ip = view.ip_checksum
        ip_header[10:12] = b"\x00\x00"
        recomputed = ipv4_header_checksum(bytes(ip_header))
        # One's-complement equality: 0x0000 and 0xFFFF are the same sum.
        assert (stored_ip % 0xFFFF) == (recomputed % 0xFFFF)

        reparsed = Packet.from_bytes(raw, view.device)
        assert reparsed.ipv4.src_ip == new_ip
        assert reparsed.l4.src_port == new_port

    @given(ips(), ports(), ips(), ports())
    @settings(max_examples=40, deadline=None)
    def test_zero_udp_checksum_stays_zero(self, new_ip, new_port, dip, dport):
        """RFC 768: a disabled UDP checksum must survive any rewrite as 0."""
        packet = make_udp_packet("10.0.0.9", "8.8.4.4", 4242, 53)
        packet.l4.checksum = 0
        view = LazyPacket(bytearray(packet.wire_bytes()), packet.device)
        view.set_src(new_ip, new_port)
        view.set_dst(dip, dport)
        assert view.l4_checksum == 0

        model = packet.clone()
        rewrite_source(model, new_ip, new_port)
        rewrite_destination(model, dip, dport)
        assert model.l4.checksum == 0
        assert view.tobytes() == model.wire_bytes()

    @given(
        st.integers(0, 0xFFFF),
        st.integers(0, 0xFFFF),
        st.integers(0, 0xFFFF),
    )
    @settings(max_examples=200, deadline=None)
    def test_precomputed_delta_is_bit_exact(self, checksum, old, new):
        """The raw path's precomputed deltas equal the slow path's updates.

        This is the property that lets a cached action store
        ``checksum_delta_u16(old, new)`` once and replay it against any
        packet's stored checksum: the result is bit-identical (not just
        one's-complement-equivalent) to updating with (old, new) directly.
        """
        from repro.packets.checksum import (
            checksum_apply_delta,
            checksum_delta_u16,
            checksum_delta_u32,
            checksum_update_u16,
            checksum_update_u32,
        )

        delta = checksum_delta_u16(old, new)
        assert checksum_apply_delta(checksum, delta) == checksum_update_u16(
            checksum, old, new
        )

        old32 = (old << 16) | new
        new32 = (new << 16) | old
        high, low = checksum_delta_u32(old32, new32)
        stepped = checksum_apply_delta(checksum_apply_delta(checksum, high), low)
        assert stepped == checksum_update_u32(checksum, old32, new32)
