"""Checksum arithmetic: RFC 1071 vectors and RFC 1624 incremental updates."""

import struct

from hypothesis import given, strategies as st

from repro.packets.checksum import (
    checksum_update_u16,
    checksum_update_u32,
    checksums_equivalent,
    internet_checksum,
    ipv4_header_checksum,
    l4_checksum,
)


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # The classic RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        # Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_padding(self):
        # A trailing odd byte is padded with zero on the right.
        assert internet_checksum(b"\xab") == internet_checksum(b"\xab\x00")

    def test_checksum_of_data_with_checksum_is_zero(self):
        # Inserting the checksum into the data makes the sum fold to 0.
        data = b"\x45\x00\x00\x28\x1c\x46\x40\x00\x40\x06"
        csum = internet_checksum(data + b"\x00\x00" + b"\x0a\x00\x00\x01\x0a\x00\x00\x02")
        full = data + struct.pack(">H", csum) + b"\x0a\x00\x00\x01\x0a\x00\x00\x02"
        assert internet_checksum(full) == 0

    @given(st.binary(min_size=0, max_size=64))
    def test_checksum_is_16_bit(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestIncrementalUpdate:
    @given(
        st.binary(min_size=20, max_size=40).filter(lambda d: len(d) % 2 == 0),
        st.integers(0, 9),
        st.integers(0, 0xFFFF),
    )
    def test_u16_patch_equals_recompute(self, data, word_index, new_value):
        """RFC 1624: patching a 16-bit word incrementally == recomputing."""
        offset = word_index * 2
        old_value = struct.unpack_from(">H", data, offset)[0]
        original = internet_checksum(data)
        patched_data = data[:offset] + struct.pack(">H", new_value) + data[offset + 2 :]
        expected = internet_checksum(patched_data)
        patched = checksum_update_u16(original, old_value, new_value)
        assert checksums_equivalent(patched, expected)

    @given(
        st.binary(min_size=20, max_size=40).filter(lambda d: len(d) % 4 == 0),
        st.integers(0, 4),
        st.integers(0, 0xFFFFFFFF),
    )
    def test_u32_patch_equals_recompute(self, data, dword_index, new_value):
        offset = dword_index * 4
        old_value = struct.unpack_from(">I", data, offset)[0]
        original = internet_checksum(data)
        patched_data = data[:offset] + struct.pack(">I", new_value) + data[offset + 4 :]
        expected = internet_checksum(patched_data)
        patched = checksum_update_u32(original, old_value, new_value)
        assert checksums_equivalent(patched, expected)

    def test_identity_patch(self):
        assert checksum_update_u16(0x1234, 0xBEEF, 0xBEEF) == 0x1234

    def test_u16_range_check(self):
        import pytest

        with pytest.raises(ValueError):
            checksum_update_u16(0, 0x10000, 0)


class TestNatRewriteProperty:
    """Incremental patching == full recompute for whole NAT rewrites.

    A NAT rewrite touches an IP address (IPv4 header checksum and the
    L4 pseudo-header) and a port (L4 only); the incremental RFC 1624
    path the NATs use must agree with a full recompute via
    ``ipv4_header_checksum``/``l4_checksum`` under
    ``checksums_equivalent`` for every randomized rewrite.
    """

    @staticmethod
    def _ipv4_header(src_ip, dst_ip, checksum=0):
        return struct.pack(
            ">BBHHHBBHII", 0x45, 0, 20, 0x1C46, 0x4000, 64, 17, checksum,
            src_ip, dst_ip,
        )

    @staticmethod
    def _udp_segment(src_port, dst_port, payload, checksum=0):
        return struct.pack(
            ">HHHH", src_port, dst_port, 8 + len(payload), checksum
        ) + payload

    @given(
        src_ip=st.integers(0, 0xFFFFFFFF),
        dst_ip=st.integers(0, 0xFFFFFFFF),
        new_ip=st.integers(0, 0xFFFFFFFF),
    )
    def test_ip_rewrite_patches_ipv4_header_checksum(self, src_ip, dst_ip, new_ip):
        original = ipv4_header_checksum(self._ipv4_header(src_ip, dst_ip))
        patched = checksum_update_u32(original, src_ip, new_ip)
        recomputed = ipv4_header_checksum(self._ipv4_header(new_ip, dst_ip))
        assert checksums_equivalent(patched, recomputed)

    @given(
        src_ip=st.integers(0, 0xFFFFFFFF),
        dst_ip=st.integers(0, 0xFFFFFFFF),
        src_port=st.integers(0, 0xFFFF),
        dst_port=st.integers(0, 0xFFFF),
        new_ip=st.integers(0, 0xFFFFFFFF),
        new_port=st.integers(0, 0xFFFF),
        payload=st.binary(min_size=0, max_size=32),
    )
    def test_source_rewrite_patches_l4_checksum(
        self, src_ip, dst_ip, src_port, dst_port, new_ip, new_port, payload
    ):
        """The full source rewrite (IP in the pseudo-header + port)."""
        segment = self._udp_segment(src_port, dst_port, payload)
        original = l4_checksum(src_ip, dst_ip, 17, segment)
        patched = checksum_update_u32(original, src_ip, new_ip)
        patched = checksum_update_u16(patched, src_port, new_port)
        rewritten = self._udp_segment(new_port, dst_port, payload)
        recomputed = l4_checksum(new_ip, dst_ip, 17, rewritten)
        assert checksums_equivalent(patched, recomputed)

    def test_zero_ffff_edge(self):
        """The one's-complement double zero (0x0000 vs 0xFFFF).

        Patching the only nonzero word of a block to zero: the full
        recompute of the all-zero block yields 0xFFFF, while the
        incremental path lands on 0x0000 — different bit patterns, the
        same checksum on the wire.
        """
        data = struct.pack(">H", 0x1234) + b"\x00" * 18
        original = internet_checksum(data)
        patched = checksum_update_u16(original, 0x1234, 0x0000)
        recomputed = internet_checksum(b"\x00" * 20)
        assert recomputed == 0xFFFF
        assert patched == 0x0000
        assert patched != recomputed
        assert checksums_equivalent(patched, recomputed)


class TestL4Checksum:
    def test_pseudo_header_contributes(self):
        seg = b"\x00" * 8
        a = l4_checksum(0x0A000001, 0x0A000002, 17, seg)
        b = l4_checksum(0x0A000001, 0x0A000003, 17, seg)
        assert a != b

    def test_ipv4_header_checksum_requires_20_bytes(self):
        import pytest

        with pytest.raises(ValueError):
            ipv4_header_checksum(b"\x00" * 19)
