"""Checksum arithmetic: RFC 1071 vectors and RFC 1624 incremental updates."""

import struct

from hypothesis import given, strategies as st

from repro.packets.checksum import (
    checksum_update_u16,
    checksum_update_u32,
    checksums_equivalent,
    internet_checksum,
    ipv4_header_checksum,
    l4_checksum,
)


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # The classic RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        # Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_padding(self):
        # A trailing odd byte is padded with zero on the right.
        assert internet_checksum(b"\xab") == internet_checksum(b"\xab\x00")

    def test_checksum_of_data_with_checksum_is_zero(self):
        # Inserting the checksum into the data makes the sum fold to 0.
        data = b"\x45\x00\x00\x28\x1c\x46\x40\x00\x40\x06"
        csum = internet_checksum(data + b"\x00\x00" + b"\x0a\x00\x00\x01\x0a\x00\x00\x02")
        full = data + struct.pack(">H", csum) + b"\x0a\x00\x00\x01\x0a\x00\x00\x02"
        assert internet_checksum(full) == 0

    @given(st.binary(min_size=0, max_size=64))
    def test_checksum_is_16_bit(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestIncrementalUpdate:
    @given(
        st.binary(min_size=20, max_size=40).filter(lambda d: len(d) % 2 == 0),
        st.integers(0, 9),
        st.integers(0, 0xFFFF),
    )
    def test_u16_patch_equals_recompute(self, data, word_index, new_value):
        """RFC 1624: patching a 16-bit word incrementally == recomputing."""
        offset = word_index * 2
        old_value = struct.unpack_from(">H", data, offset)[0]
        original = internet_checksum(data)
        patched_data = data[:offset] + struct.pack(">H", new_value) + data[offset + 2 :]
        expected = internet_checksum(patched_data)
        patched = checksum_update_u16(original, old_value, new_value)
        assert checksums_equivalent(patched, expected)

    @given(
        st.binary(min_size=20, max_size=40).filter(lambda d: len(d) % 4 == 0),
        st.integers(0, 4),
        st.integers(0, 0xFFFFFFFF),
    )
    def test_u32_patch_equals_recompute(self, data, dword_index, new_value):
        offset = dword_index * 4
        old_value = struct.unpack_from(">I", data, offset)[0]
        original = internet_checksum(data)
        patched_data = data[:offset] + struct.pack(">I", new_value) + data[offset + 4 :]
        expected = internet_checksum(patched_data)
        patched = checksum_update_u32(original, old_value, new_value)
        assert checksums_equivalent(patched, expected)

    def test_identity_patch(self):
        assert checksum_update_u16(0x1234, 0xBEEF, 0xBEEF) == 0x1234

    def test_u16_range_check(self):
        import pytest

        with pytest.raises(ValueError):
            checksum_update_u16(0, 0x10000, 0)


class TestL4Checksum:
    def test_pseudo_header_contributes(self):
        seg = b"\x00" * 8
        a = l4_checksum(0x0A000001, 0x0A000002, 17, seg)
        b = l4_checksum(0x0A000001, 0x0A000003, 17, seg)
        assert a != b

    def test_ipv4_header_checksum_requires_20_bytes(self):
        import pytest

        with pytest.raises(ValueError):
            ipv4_header_checksum(b"\x00" * 19)
