"""Header rewriting: incremental checksum patching vs full recompute."""

from hypothesis import given, settings, strategies as st

from repro.nat.rewrite import rewrite_destination, rewrite_source
from repro.packets.builder import make_tcp_packet, make_udp_packet

ips = st.integers(1, 0xFFFFFFFE)
ports = st.integers(1, 0xFFFF)


class TestRewriteSource:
    @settings(max_examples=60, deadline=None)
    @given(ips, ports, ips, ports, st.booleans(), st.binary(max_size=32))
    def test_patched_checksums_stay_valid(self, src, sport, new_ip, new_port, tcp, payload):
        maker = make_tcp_packet if tcp else make_udp_packet
        packet = maker(src, 0x08080808, sport, 80, payload=payload)
        rewrite_source(packet, new_ip, new_port)
        assert packet.ipv4.src_ip == new_ip
        assert packet.l4.src_port == new_port
        assert packet.ipv4.header_checksum_valid()
        assert packet.l4_checksum_valid()

    @settings(max_examples=60, deadline=None)
    @given(ips, ports, ips, ports, st.booleans())
    def test_patched_equals_serialized_recompute(self, src, sport, new_ip, new_port, tcp):
        """The patched packet serializes to the same bytes as a packet
        built from scratch with the rewritten fields."""
        maker = make_tcp_packet if tcp else make_udp_packet
        patched = maker(src, 0x08080808, sport, 80)
        rewrite_source(patched, new_ip, new_port)
        rebuilt = maker(new_ip, 0x08080808, new_port, 80)
        assert patched.to_bytes() == rebuilt.to_bytes()


class TestRewriteDestination:
    @settings(max_examples=60, deadline=None)
    @given(ips, ports, ips, ports, st.booleans())
    def test_patched_checksums_stay_valid(self, dst, dport, new_ip, new_port, tcp):
        maker = make_tcp_packet if tcp else make_udp_packet
        packet = maker(0x0A000001, dst, 4000, dport)
        rewrite_destination(packet, new_ip, new_port)
        assert packet.ipv4.dst_ip == new_ip
        assert packet.l4.dst_port == new_port
        assert packet.ipv4.header_checksum_valid()
        assert packet.l4_checksum_valid()

    def test_zero_udp_checksum_stays_disabled(self):
        packet = make_udp_packet(1, 2, 3, 4)
        packet.l4.checksum = 0
        rewrite_destination(packet, 9, 10)
        assert packet.l4.checksum == 0

    def test_requires_flow_packet(self):
        import pytest

        from repro.packets.headers import EthernetHeader, Packet

        with pytest.raises(ValueError):
            rewrite_source(Packet(eth=EthernetHeader()), 1, 2)


class TestDoubleRewrite:
    def test_hairpin_style_double_patch(self):
        """Source and destination patched in sequence stay consistent."""
        packet = make_udp_packet(0x0A000001, 0xC0000201, 4000, 1000)
        rewrite_source(packet, 0xC0000201, 7777)
        rewrite_destination(packet, 0x0A000002, 5000)
        assert packet.ipv4.header_checksum_valid()
        assert packet.l4_checksum_valid()
