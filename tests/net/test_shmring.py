"""Unit proofs for the SPSC shared-memory ring.

The differential suite proves the rings end-to-end inside the process
runtime; these tests pin the ring's own contract in isolation — span
accounting, wraparound of both the payload and the 4-byte span header,
full/empty boundaries, and idempotent lifecycle — so a future failure
localizes to the ring or to the runtime, not to "somewhere in shm".
"""

import glob

import pytest

from repro.net.mbuf import SLOT_HEADER, pack_slot_record
from repro.net.shmring import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_SLOTS,
    RingClosed,
    ShmRing,
    unlink_rings,
)


@pytest.fixture
def ring():
    r = ShmRing(slots=8, slot_bytes=64)
    yield r
    r.unlink()


def records_blob(count, size=40, tag=0):
    return b"".join(
        pack_slot_record(i, 1, 1_000 + tag, bytes([tag % 256]) * size)
        for i in range(count)
    )


class TestGeometry:
    def test_rejects_nonpositive_slots(self):
        with pytest.raises(ValueError):
            ShmRing(slots=0)

    def test_rejects_slots_too_small_for_headers(self):
        with pytest.raises(ValueError):
            ShmRing(slot_bytes=4)

    def test_span_slots_rounds_up(self, ring):
        assert ring.span_slots(1) == 1
        # span header (4) + 60 = 64 → exactly one slot
        assert ring.span_slots(60) == 1
        assert ring.span_slots(61) == 2

    def test_defaults_are_a_mebibyte_of_payload(self):
        assert DEFAULT_SLOTS * DEFAULT_SLOT_BYTES == 1 << 20


class TestPushPop:
    def test_round_trips_records(self, ring):
        blob = records_blob(3)
        assert ring.try_push_burst(blob)
        assert ring.pop_burst_bytes() == blob
        assert ring.pop_burst_bytes() is None

    def test_pop_burst_parses_slot_records(self, ring):
        wire = b"\xabxyz"
        ring.try_push_burst(pack_slot_record(7, 1, 99, wire))
        assert ring.pop_burst() == [(7, 1, 99, wire)]

    def test_bursts_stay_separate_and_ordered(self, ring):
        first, second = records_blob(1, tag=1), records_blob(1, tag=2)
        assert ring.try_push_burst(first)
        assert ring.try_push_burst(second)
        assert ring.pop_burst_bytes() == first
        assert ring.pop_burst_bytes() == second

    def test_empty_burst_is_a_noop(self, ring):
        assert ring.try_push_burst(b"")
        assert ring.used_slots == 0

    def test_full_ring_refuses_then_accepts_after_pop(self, ring):
        blob = records_blob(4)  # 4 + 4*(16+40) = 228 bytes → 4 slots
        assert ring.try_push_burst(blob)
        assert ring.try_push_burst(blob)
        assert ring.free_slots == 0
        assert not ring.try_push_burst(records_blob(1))
        assert ring.pop_burst_bytes() == blob
        assert ring.try_push_burst(records_blob(1))

    def test_oversized_burst_raises_with_sizing_advice(self, ring):
        with pytest.raises(ValueError, match="ring_slots"):
            ring.try_push_burst(records_blob(20))

    def test_drain_flattens_all_visible_bursts(self, ring):
        ring.try_push_burst(records_blob(2, tag=1))
        ring.try_push_burst(records_blob(1, tag=2))
        drained = ring.drain()
        assert len(drained) == 3
        assert drained[-1][2] == 1_002  # tag 2's timestamp, order kept


class TestWraparound:
    def test_payload_wraps_the_edge(self, ring):
        """Offset the ring, then push a span that must split in two."""
        ring.try_push_burst(records_blob(4))  # 4 slots
        assert ring.pop_burst_bytes() is not None
        big = records_blob(5)  # 5 slots: starts at slot 4, wraps at 8
        assert ring.try_push_burst(big)
        assert ring.pop_burst_bytes() == big

    def test_wrap_from_every_slot_offset(self):
        """Multi-slot spans starting at each slot, including the last.

        A span launched from the final slot keeps only its header plus
        a sliver of payload before the edge — the tightest split the
        slot-aligned protocol can produce (the 4-byte header itself can
        never straddle the edge, since spans start on slot boundaries
        and a slot always holds at least 20 bytes).
        """
        ring = ShmRing(slots=8, slot_bytes=64)
        try:
            ring.try_push_burst(records_blob(1, size=10))  # 1 slot
            ring.pop_burst_bytes()
            for i in range(8):  # start offsets walk 1,4,7,2,5,0,3,6
                start_slot = ring.head % ring.slots
                blob = records_blob(2, size=60, tag=i)  # 3 slots
                assert ring.try_push_burst(blob)
                assert ring.pop_burst_bytes() == blob, (
                    f"span from slot {start_slot} corrupted"
                )
        finally:
            ring.unlink()

    def test_free_running_indexes_never_reset(self, ring):
        for i in range(50):
            ring.try_push_burst(records_blob(2, tag=i))
            ring.pop_burst_bytes()
        assert ring.head == ring.tail
        assert ring.head > ring.slots  # lapped several times

    def test_long_mixed_sequence_stays_fifo(self):
        import random

        rng = random.Random(7)
        ring = ShmRing(slots=16, slot_bytes=64)
        expected = []
        tag = 0
        try:
            for _ in range(500):
                if rng.random() < 0.6:
                    blob = records_blob(rng.randint(1, 5), tag=tag)
                    tag += 1
                    if ring.try_push_burst(blob):
                        expected.append(blob)
                else:
                    got = ring.pop_burst_bytes()
                    if expected:
                        assert got == expected.pop(0)
                    else:
                        assert got is None
            while expected:
                assert ring.pop_burst_bytes() == expected.pop(0)
        finally:
            ring.unlink()


class TestSharedAccess:
    def test_attach_by_name_sees_producer_writes(self, ring):
        consumer = ShmRing(
            name=ring.name, slots=8, slot_bytes=64, create=False
        )
        try:
            blob = records_blob(2)
            ring.try_push_burst(blob)
            assert consumer.pop_burst_bytes() == blob
            assert ring.used_slots == 0  # tail published back
        finally:
            consumer.close()


class TestLifecycle:
    def test_unlink_is_idempotent(self):
        ring = ShmRing(slots=8, slot_bytes=64)
        ring.unlink()
        ring.unlink()  # second unlink must not raise

    def test_closed_ring_raises_ring_closed(self):
        ring = ShmRing(slots=8, slot_bytes=64)
        name = ring.name
        ring.unlink()
        with pytest.raises((RingClosed, ValueError)):
            ring.try_push_burst(records_blob(1))
        assert not glob.glob(f"/dev/shm/{name}")

    def test_unlink_rings_swallows_everything(self):
        ring = ShmRing(slots=8, slot_bytes=64)
        unlink_rings([ring, ring, object.__new__(ShmRing)])

    def test_segment_visible_in_dev_shm_until_unlink(self):
        ring = ShmRing(name="repro-ring-selftest", slots=8, slot_bytes=64)
        assert glob.glob("/dev/shm/repro-ring-selftest")
        ring.unlink()
        assert not glob.glob("/dev/shm/repro-ring-selftest")
