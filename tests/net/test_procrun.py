"""The process-per-shard runtime's own contracts (repro.net.procrun).

Byte-identity with the oracle is proven by the differential suite
(``tests/integration/test_proc_differential.py``); this file covers the
machinery around it: wire framing, the crash surface (a dead worker
must raise a typed :class:`WorkerCrashed`, never hang a pipe read),
worker-side errors crossing the pipe as exceptions, clean shutdown, and
the coordinated checkpoint fence.
"""

import os
import signal

import pytest

from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.net.procrun import (
    ProcessShardedRuntime,
    WorkerCrashed,
    pack_record,
    unpack_records,
)
from repro.packets.builder import make_udp_packet
from repro.resil.faults import FaultPlan


def config(max_flows=64):
    return NatConfig(
        max_flows=max_flows, expiration_time=60_000_000, start_port=1000
    )


def outbound(i, device=0):
    return make_udp_packet(
        0x0A000001 + (i % 200), "8.8.8.8", 1_024 + i, 53, device=device
    )


def drive(runtime, count, now=1_000, burst=8):
    """Inject ``count`` outbound packets, turning every ``burst``."""
    pending = 0
    for i in range(count):
        runtime.inject(0, outbound(i), now)
        now += 5
        pending += 1
        if pending >= burst:
            runtime.main_loop_burst(now, burst)
            pending = 0
    runtime.main_loop_burst(now + 1, burst)
    return now


class TestFraming:
    def test_record_roundtrip(self):
        wire = outbound(3).wire_bytes()
        blob = pack_record(1, 0, 123_456, wire)
        assert unpack_records(blob) == [(1, 0, 123_456, wire)]

    def test_concatenated_records_keep_order(self):
        wires = [outbound(i).wire_bytes() for i in range(5)]
        blob = b"".join(
            pack_record(i % 2, 1, 10 + i, w) for i, w in enumerate(wires)
        )
        records = unpack_records(blob)
        assert [w for _, _, _, w in records] == wires
        assert [p for p, _, _, _ in records] == [0, 1, 0, 1, 0]

    def test_empty_blob(self):
        assert unpack_records(b"") == []


class TestDataPath:
    def test_translates_and_collects(self):
        with ProcessShardedRuntime(VigNat, config(), workers=2) as runtime:
            drive(runtime, 12)
            out = runtime.collect()
            assert len(out) == 12
            ext_ip = runtime.config.external_ip
            for _, _, packet in out:
                assert packet.ipv4.src_ip == ext_ip
            assert runtime.op_counters()
            assert runtime.flow_count() == 12

    def test_steering_spreads_flows(self):
        with ProcessShardedRuntime(VigNat, config(), workers=4) as runtime:
            drive(runtime, 32)
            assert sum(runtime.steered) == 32
            assert sum(1 for q in runtime.steered if q > 0) >= 2

    def test_snapshot_carries_worker_labels(self):
        with ProcessShardedRuntime(VigNat, config(), workers=2) as runtime:
            drive(runtime, 8)
            snapshot = runtime.snapshot_metrics()
            occupancy = next(
                m
                for m in snapshot["metrics"]
                if m["name"] == "flow_table_occupancy"
            )
            workers = {
                s["labels"].get("worker") for s in occupancy["samples"]
            }
            assert workers == {"0", "1"}

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ProcessShardedRuntime(VigNat, config(), workers=0)
        with pytest.raises(ValueError):
            ProcessShardedRuntime(
                VigNat, config(), workers=1, turn_timeout_s=0
            )
        with ProcessShardedRuntime(VigNat, config(), workers=1) as runtime:
            with pytest.raises(ValueError):
                runtime.main_loop_burst(1_000, 0)


class TestCrashSurface:
    def test_fault_plan_kill_raises_typed_error(self):
        """The kill fault terminates the real OS process, and the turn
        reports it as WorkerCrashed with the shard id — never a hang."""
        plan = FaultPlan().kill_worker(1, at_us=2_000)
        runtime = ProcessShardedRuntime(
            VigNat, config(), workers=2, fault_plan=plan
        )
        try:
            drive(runtime, 8, now=1_000, burst=8)  # before the window
            for i in range(8, 16):
                runtime.inject(0, outbound(i), 2_000)
            with pytest.raises(WorkerCrashed) as exc_info:
                runtime.main_loop_burst(2_500, 8)
            crash = exc_info.value
            assert crash.shard == 1
            assert crash.reason == "killed by fault plan"
            assert crash.last_acked_seq > 0
            assert not runtime._procs[1].is_alive()
            # The survivor is still serving.
            assert runtime._procs[0].is_alive()
        finally:
            runtime.stop()

    def test_killed_process_surfaces_not_hangs(self):
        """A worker dying outside any fault plan (OOM kill, crash) is
        detected on the next turn within the timeout."""
        runtime = ProcessShardedRuntime(
            VigNat, config(), workers=2, turn_timeout_s=5.0
        )
        try:
            drive(runtime, 8)
            os.kill(runtime._procs[0].pid, signal.SIGKILL)
            runtime._procs[0].join(timeout=5.0)
            with pytest.raises(WorkerCrashed) as exc_info:
                for i in range(8, 24):
                    runtime.inject(0, outbound(i), 3_000)
                runtime.main_loop_burst(3_100, 8)
                runtime.main_loop_burst(3_200, 8)
            assert exc_info.value.shard == 0
            assert "worker 0" in str(exc_info.value)
        finally:
            runtime.stop()

    def test_requests_to_dead_worker_raise(self):
        plan = FaultPlan().kill_worker(0, at_us=1_500)
        runtime = ProcessShardedRuntime(
            VigNat, config(), workers=2, fault_plan=plan
        )
        try:
            runtime.inject(0, outbound(0), 1_600)
            with pytest.raises(WorkerCrashed):
                runtime.main_loop_burst(1_600, 8)
            with pytest.raises(WorkerCrashed):
                runtime.op_counters()
            with pytest.raises(WorkerCrashed):
                runtime.snapshot_metrics()
        finally:
            runtime.stop()

    def test_kill_counts_lost_batch(self):
        """Packets buffered for a worker killed before its turn are
        accounted as fault_kill_lost, like the oracle's ledger."""
        plan = FaultPlan().kill_worker(1, at_us=1_000)
        runtime = ProcessShardedRuntime(
            VigNat, config(), workers=2, fault_plan=plan
        )
        try:
            pending_for_1 = 0
            for i in range(16):
                packet = outbound(i)
                if runtime.worker_for(packet) == 1:
                    pending_for_1 += 1
                runtime.inject(0, packet, 1_000)
            assert pending_for_1 > 0
            with pytest.raises(WorkerCrashed):
                runtime.main_loop_burst(1_100, 16)
            # drop_causes() would query the dead worker (and raise the
            # typed crash); the parent-side ledger has the count.
            assert runtime.fault_kill_lost == pending_for_1
        finally:
            runtime.stop()


class TestWorkerErrors:
    def test_worker_exception_reraises_in_parent(self):
        """A worker-side failure crosses the pipe as an exception, so
        the parent sees the real error instead of a protocol stall."""
        from repro.resil.checkpoint import CheckpointError

        with ProcessShardedRuntime(VigNat, config(), workers=1) as runtime:
            drive(runtime, 4)
            checkpoint_set = runtime.checkpoint(now_us=5_000)
            frame = checkpoint_set.checkpoints[0]
            corrupted = bytearray(frame.to_bytes())
            corrupted[-1] ^= 0xFF
            from repro.net import procrun

            with pytest.raises(CheckpointError):
                runtime._request(
                    0,
                    procrun.OP_RESTORE + bytes(corrupted),
                    procrun.RE_RESTORED,
                )
            # The worker survives its own exception and keeps serving.
            drive(runtime, 4)
            assert runtime.flow_count() == 4


class TestShutdown:
    def test_stop_is_idempotent_and_joins(self):
        runtime = ProcessShardedRuntime(VigNat, config(), workers=2)
        drive(runtime, 4)
        procs = list(runtime._procs)
        runtime.stop()
        runtime.stop()
        assert all(not p.is_alive() for p in procs)
        with pytest.raises(RuntimeError):
            runtime.main_loop_burst(1_000, 8)

    def test_stop_after_crash_is_safe(self):
        plan = FaultPlan().kill_worker(0, at_us=1_000)
        runtime = ProcessShardedRuntime(
            VigNat, config(), workers=2, fault_plan=plan
        )
        runtime.inject(0, outbound(0), 1_000)
        with pytest.raises(WorkerCrashed):
            runtime.main_loop_burst(1_000, 8)
        runtime.stop()
        assert all(not p.is_alive() for p in runtime._procs)


class TestCoordinatedCheckpoint:
    def test_checkpoint_set_shape(self):
        with ProcessShardedRuntime(VigNat, config(), workers=2) as runtime:
            drive(runtime, 10)
            checkpoint_set = runtime.checkpoint(now_us=9_000)
            assert checkpoint_set.workers == 2
            assert checkpoint_set.taken_at_us == 9_000
            payload = checkpoint_set.to_bytes()
            from repro.resil.checkpoint import CheckpointSet

            assert CheckpointSet.from_bytes(payload).workers == 2

    def test_restore_into_fresh_runtime(self):
        """The fence: state checkpointed from one runtime restores into
        a brand-new process fleet, which then serves the return path."""
        with ProcessShardedRuntime(VigNat, config(), workers=2) as first:
            drive(first, 10)
            flows_before = first.flow_count()
            replies = []
            ext_ip = first.config.external_ip
            for _, _, packet in first.collect():
                replies.append(
                    make_udp_packet(
                        "8.8.8.8",
                        ext_ip,
                        packet.l4.dst_port,
                        packet.l4.src_port,
                        device=1,
                    )
                )
            checkpoint_set = first.checkpoint(now_us=9_000)

        with ProcessShardedRuntime(VigNat, config(), workers=2) as second:
            second.restore(checkpoint_set)
            assert second.flow_count() == flows_before
            now = 10_000
            for reply in replies:
                second.inject(1, reply, now)
                now += 5
            second.main_loop_burst(now, 32)
            delivered = second.collect()
            assert len(delivered) == len(replies)
            for _, _, packet in delivered:
                assert packet.device == 0  # back on the internal side

    def test_restore_rejects_width_mismatch(self):
        from repro.resil.checkpoint import CheckpointError

        with ProcessShardedRuntime(VigNat, config(), workers=2) as runtime:
            drive(runtime, 4)
            checkpoint_set = runtime.checkpoint(now_us=1_000)
        with ProcessShardedRuntime(VigNat, config(), workers=3) as other:
            with pytest.raises(CheckpointError):
                other.restore(checkpoint_set)


class TestTimedPump:
    def test_pump_matches_driven_schedule(self):
        """prepare_schedule + pump processes exactly the packets the
        plain drive loop would, so the benchmark's pps numerator is
        the schedule length."""
        from repro.net.moongen import ConstantRateFlows

        events = list(
            ConstantRateFlows(32, 1_000_000.0, 200, burst=16).events()
        )
        with ProcessShardedRuntime(VigNat, config(), workers=2) as runtime:
            schedule = runtime.prepare_schedule(events, burst_size=16)
            processed = runtime.pump(schedule, burst_size=16)
            assert processed == len(events)
            # Replaying the warmed schedule is idempotent in count.
            assert runtime.pump(schedule, burst_size=16) == len(events)
            assert runtime.flow_count() == 32
