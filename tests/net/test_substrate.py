"""The network substrate: mbufs, ports, DPDK runtime."""

import pytest

from repro.net.dpdk import DpdkRuntime
from repro.net.mbuf import MbufPool
from repro.net.nic import Port
from repro.packets.builder import make_udp_packet


def pkt(sport=1000):
    return make_udp_packet("10.0.0.1", "10.0.0.2", sport, 80)


class TestMbufPool:
    def test_alloc_free_cycle(self):
        pool = MbufPool(2)
        a = pool.alloc(pkt())
        assert pool.in_flight == 1
        pool.free(a)
        assert pool.in_flight == 0

    def test_exhaustion_returns_none(self):
        pool = MbufPool(1)
        assert pool.alloc(pkt()) is not None
        assert pool.alloc(pkt()) is None
        assert pool.alloc_failures == 1

    def test_double_free_rejected(self):
        pool = MbufPool(1)
        mbuf = pool.alloc(pkt())
        pool.free(mbuf)
        with pytest.raises(RuntimeError):
            pool.free(mbuf)

    def test_metadata(self):
        pool = MbufPool(4)
        mbuf = pool.alloc(pkt(), port=1, timestamp=42)
        assert mbuf.port == 1 and mbuf.timestamp == 42


class TestPort:
    def test_deliver_and_pop(self):
        port = Port(0, rx_capacity=4)
        assert port.deliver(pkt(), 100)
        ts, packet = port.rx_pop()
        assert ts == 100
        assert port.counters.rx_packets == 1

    def test_ring_overflow_drops(self):
        port = Port(0, rx_capacity=2)
        assert port.deliver(pkt(1), 0)
        assert port.deliver(pkt(2), 0)
        assert not port.deliver(pkt(3), 0)
        assert port.counters.rx_dropped == 1

    def test_fifo_order(self):
        port = Port(0)
        port.deliver(pkt(1), 0)
        port.deliver(pkt(2), 1)
        assert port.rx_pop()[1].l4.src_port == 1
        assert port.rx_pop()[1].l4.src_port == 2
        assert port.rx_pop() is None

    def test_transmit_and_drain(self):
        port = Port(0)
        port.transmit(pkt(), 50)
        assert port.counters.tx_packets == 1
        drained = port.drain_tx()
        assert len(drained) == 1 and drained[0][0] == 50
        assert port.drain_tx() == []


class TestDpdkRuntime:
    def test_rx_tx_roundtrip(self):
        rt = DpdkRuntime(port_count=2)
        rt.inject(0, pkt(), 10)
        burst = rt.rx_burst(0, 32)
        assert len(burst) == 1
        assert rt.pool.in_flight == 1
        rt.tx_burst(1, burst, 20)
        assert rt.pool.in_flight == 0
        collected = rt.collect()
        assert len(collected) == 1 and collected[0][0] == 1

    def test_rx_burst_respects_limit(self):
        rt = DpdkRuntime()
        for i in range(5):
            rt.inject(0, pkt(i), i)
        assert len(rt.rx_burst(0, 3)) == 3
        assert len(rt.rx_burst(0, 3)) == 2

    def test_free_returns_buffer(self):
        rt = DpdkRuntime()
        rt.inject(0, pkt(), 0)
        mbuf = rt.rx_burst(0, 1)[0]
        rt.free(mbuf)
        assert rt.pool.in_flight == 0

    def test_leak_is_observable(self):
        """Forgetting to free (the bug Vigor caught in VigNAT) shows up."""
        rt = DpdkRuntime(pool_size=4)
        for i in range(4):
            rt.inject(0, pkt(i), i)
            rt.rx_burst(0, 1)  # received, never freed: a leak
        assert rt.pool.in_flight == 4
        rt.inject(0, pkt(9), 9)
        assert rt.rx_burst(0, 1) == []  # pool exhausted by the leak
