"""Pool accounting under sharding, and the runtimes' metric snapshots."""

import pytest

from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.net.dpdk import DpdkRuntime, ShardedRuntime
from repro.net.mbuf import MbufPool
from repro.packets.builder import make_udp_packet


def _packet(sport: int = 5000, device: int = 0):
    return make_udp_packet("10.0.0.5", "8.8.8.8", sport, 53, device=device)


# -- the over-credit bugfix ---------------------------------------------------


def test_cross_pool_free_raises():
    """Worker B crediting worker A's buffer must fail loudly.

    Before the ownership tag, a cross-worker free into a non-full pool
    silently inflated that pool's free count while the owning pool
    leaked — both workers' ``in_flight`` became lies.
    """
    pool_a, pool_b = MbufPool(capacity=4), MbufPool(capacity=4)
    mbuf = pool_a.alloc(_packet())
    with pytest.raises(RuntimeError, match="cross-worker"):
        pool_b.free(mbuf)
    # The misdirected free changed nothing on either side.
    assert pool_a.in_flight == 1
    assert pool_b.in_flight == 0
    # The rightful owner can still reclaim its buffer.
    pool_a.free(mbuf)
    assert pool_a.in_flight == 0


def test_double_free_still_raises():
    pool = MbufPool(capacity=2)
    mbuf = pool.alloc(_packet())
    pool.free(mbuf)
    with pytest.raises(RuntimeError, match="double free"):
        pool.free(mbuf)


def test_ownerless_mbuf_into_full_pool_raises():
    """Hand-built mbufs keep the legacy capacity-only defense."""
    from repro.net.mbuf import Mbuf

    pool = MbufPool(capacity=1)
    foreign = Mbuf(packet=_packet())
    with pytest.raises(RuntimeError, match="full pool"):
        pool.free(foreign)


def test_sharded_workers_use_private_pools():
    runtime = ShardedRuntime(
        VigNat, NatConfig(max_flows=64), workers=2, pool_size=8
    )
    pools = {id(r.pool) for r in runtime.runtimes}
    assert len(pools) == 2


# -- drop-cause aggregation ---------------------------------------------------


def test_sharded_high_water_aggregates_by_max():
    """Watermarks are per-pool; the merged figure is the worst single
    pool's mark, never a sum no pool ever reached."""
    runtime = ShardedRuntime(
        VigNat, NatConfig(max_flows=64), workers=2, pool_size=8
    )
    runtime.runtimes[0].pool.high_water = 5
    runtime.runtimes[1].pool.high_water = 3
    causes = runtime.drop_causes()
    assert causes["pool_high_water"] == 5


def test_sharded_drop_counts_sum():
    runtime = ShardedRuntime(
        VigNat, NatConfig(max_flows=64), workers=2, pool_size=8
    )
    runtime.runtimes[0].nf_dropped = 2
    runtime.runtimes[1].nf_dropped = 3
    assert runtime.drop_causes()["nf_drop"] == 5


# -- metric snapshots ---------------------------------------------------------


def _by_name(snapshot):
    return {m["name"]: m for m in snapshot["metrics"]}


def test_runtime_snapshot_covers_pool_nic_and_nf():
    runtime = DpdkRuntime(port_count=2, pool_size=32)
    nat = VigNat(NatConfig(max_flows=64))
    for i in range(4):
        runtime.inject(0, _packet(5000 + i), timestamp=i)
    runtime.main_loop_burst(nat, now_us=10, burst_size=8)

    metrics = _by_name(runtime.metrics_snapshot(nat))

    def total(name):
        return sum(s["value"] for s in metrics[name]["samples"])

    # NIC counters are per-port samples (rx on port 0, tx on port 1).
    assert total("nic_rx_packets_total") == 4
    assert total("nic_tx_packets_total") == 4
    assert metrics["pool_capacity"]["samples"][0]["value"] == 32
    assert metrics["pool_in_flight"]["samples"][0]["value"] == 0
    assert metrics["pool_high_water"]["samples"][0]["value"] > 0
    assert metrics["pool_high_water"]["merge"] == "max"
    assert metrics["runtime_nf_dropped_total"]["samples"][0]["value"] == 0
    assert metrics["flow_table_occupancy"]["samples"][0]["value"] == 4


def test_sharded_snapshot_labels_every_worker():
    runtime = ShardedRuntime(
        VigNat, NatConfig(max_flows=64), workers=2, pool_size=32
    )
    for i in range(8):
        runtime.inject(0, _packet(5000 + i), timestamp=i)
    runtime.main_loop_burst(now_us=10, burst_size=8)

    metrics = _by_name(runtime.metrics_snapshot())
    rx = metrics["nic_rx_packets_total"]["samples"]
    assert {s["labels"]["worker"] for s in rx} == {"0", "1"}
    assert sum(s["value"] for s in rx) == 8
    steered = metrics["rss_steered_total"]["samples"]
    assert sum(s["value"] for s in steered) == 8
    # Every worker's private pool reports under its own label.
    high_water = metrics["pool_high_water"]
    assert high_water["merge"] == "max"
    assert len(high_water["samples"]) == 2
