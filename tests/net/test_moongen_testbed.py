"""Workload generation and the RFC 2544 testbed mechanics."""

from repro.nat.config import NatConfig
from repro.nat.noop import NoopForwarder
from repro.nat.vignat import VigNat
from repro.net.costmodel import CostModel
from repro.net.moongen import (
    BackgroundFlows,
    ConstantRateFlows,
    ProbeFlows,
    merge_sources,
)
from repro.net.testbed import Rfc2544Testbed

CFG = NatConfig(max_flows=256)
S = 1_000_000_000


class TestBackgroundFlows:
    def test_rate_and_count(self):
        source = BackgroundFlows(10, total_pps=1000, duration_ns=S)
        events = list(source.events())
        assert len(events) == 1000
        assert events[0].time_ns == 0
        assert events[-1].time_ns < S

    def test_round_robin_over_flows(self):
        source = BackgroundFlows(3, total_pps=100, duration_ns=S // 10)
        ips = [e.packet.ipv4.src_ip for e in source.events()][:6]
        assert ips[0:3] == ips[3:6]
        assert len(set(ips[:3])) == 3

    def test_distinct_five_tuples(self):
        source = BackgroundFlows(50, total_pps=50, duration_ns=S)
        tuples = {
            (e.packet.ipv4.src_ip, e.packet.l4.src_port)
            for e in source.events()
        }
        assert len(tuples) == 50

    def test_not_probe_tagged(self):
        source = BackgroundFlows(2, total_pps=10, duration_ns=S // 10)
        assert all(not e.probe for e in source.events())


class TestProbeFlows:
    def test_probe_tagged_and_ordered(self):
        source = ProbeFlows(flow_count=10, per_flow_pps=2.0, duration_ns=S)
        events = list(source.events())
        assert events and all(e.probe for e in events)
        times = [e.time_ns for e in events]
        assert times == sorted(times)

    def test_rate(self):
        source = ProbeFlows(flow_count=10, per_flow_pps=2.0, duration_ns=S)
        assert abs(len(list(source.events())) - 20) <= 10

    def test_merge_preserves_order(self):
        a = BackgroundFlows(2, total_pps=100, duration_ns=S // 10)
        b = ProbeFlows(flow_count=2, per_flow_pps=50, duration_ns=S // 10)
        merged = list(merge_sources(a.events(), b.events()))
        times = [e.time_ns for e in merged]
        assert times == sorted(times)
        assert any(e.probe for e in merged) and any(not e.probe for e in merged)


class TestTestbedRun:
    def test_idle_latency_is_path_plus_processing(self):
        testbed = Rfc2544Testbed(cost_model=CostModel())
        source = BackgroundFlows(1, total_pps=100, duration_ns=S // 10)
        result = testbed.run(NoopForwarder(), source.events())
        assert result.forwarded == 10
        # No queueing at 100 pps: latency == fixed path + noop base.
        assert abs(result.all_latency.average_us() - 4.75) < 0.05

    def test_queue_overflow_produces_loss(self):
        testbed = Rfc2544Testbed(cost_model=CostModel(), rx_capacity=16)
        # 10 Mpps >> noop capacity (~3 Mpps): queue must overflow.
        source = ConstantRateFlows(4, rate_pps=10e6, packet_count=2_000)
        result = testbed.run(NoopForwarder(), source.events())
        assert result.queue_dropped > 0
        assert result.loss_fraction > 0.1

    def test_below_capacity_is_lossless(self):
        testbed = Rfc2544Testbed(cost_model=CostModel())
        source = ConstantRateFlows(4, rate_pps=1e6, packet_count=5_000)
        result = testbed.run(NoopForwarder(), source.events())
        assert result.queue_dropped == 0

    def test_warmup_window_not_measured(self):
        testbed = Rfc2544Testbed(cost_model=CostModel(), measure_from_ns=S // 20)
        source = BackgroundFlows(1, total_pps=100, duration_ns=S // 10)
        result = testbed.run(NoopForwarder(), source.events())
        assert result.forwarded == 5  # only the second half measured
        assert result.offered == 5

    def test_nf_drops_counted_separately(self):
        testbed = Rfc2544Testbed(cost_model=CostModel())
        nat = VigNat(CFG)
        # External-device packets are unsolicited: the NF drops them.
        source = BackgroundFlows(1, total_pps=100, duration_ns=S // 10, device=1)
        result = testbed.run(nat, source.events())
        assert result.nf_dropped == 10
        assert result.queue_dropped == 0


class TestThroughputSearch:
    def test_noop_near_calibrated_capacity(self):
        testbed = Rfc2544Testbed(cost_model=CostModel())
        outcome = testbed.max_throughput(
            NoopForwarder, flow_count=16, packet_count=8_000, iterations=6
        )
        assert 2.8 < outcome.max_mpps < 3.6  # 1/320ns = 3.125 Mpps
        assert outcome.loss_fraction <= 0.001

    def test_vignat_below_noop(self):
        testbed = Rfc2544Testbed(cost_model=CostModel())
        cfg = NatConfig(expiration_time=60_000_000)
        vig = testbed.max_throughput(
            lambda: VigNat(cfg), flow_count=64, packet_count=8_000, iterations=6
        )
        noop = testbed.max_throughput(
            NoopForwarder, flow_count=64, packet_count=8_000, iterations=6
        )
        assert vig.max_mpps < noop.max_mpps
