"""The calibrated cost model."""

from repro.nat.config import NatConfig
from repro.nat.netfilter import NetfilterNat
from repro.nat.noop import NoopForwarder
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.net.costmodel import (
    LATENCY_BASE_NS,
    PATH_OVERHEAD_NS,
    CostModel,
)
from repro.packets.builder import make_udp_packet

CFG = NatConfig(max_flows=64)


def one_packet(nf, sport=4000):
    packet = make_udp_packet("10.0.0.5", "8.8.8.8", sport, 53, device=0)
    nf.process(packet, 1_000)


class TestCostOrdering:
    def test_noop_cheapest_linux_priciest(self):
        model = CostModel()
        costs = {}
        for nf in (NoopForwarder(), UnverifiedNat(CFG), VigNat(CFG), NetfilterNat(CFG)):
            one_packet(nf)
            latency, service = model.packet_costs(nf)
            total = latency + model.path_overhead_ns(nf)
            costs[nf.name] = (total, service)
        assert costs["noop"][0] < costs["unverified-nat"][0]
        assert costs["unverified-nat"][0] < costs["verified-nat"][0]
        assert costs["verified-nat"][0] < costs["linux-nat"][0]
        assert costs["noop"][1] < costs["unverified-nat"][1]
        assert costs["unverified-nat"][1] < costs["verified-nat"][1]
        assert costs["verified-nat"][1] < costs["linux-nat"][1]

    def test_headline_latency_calibration(self):
        """Low-occupancy totals land near the paper's 4.75/5.03/5.13 µs."""
        model = CostModel()
        expectations = {
            "noop": (NoopForwarder(), 4.75),
            "unverified-nat": (UnverifiedNat(CFG), 5.03),
            "verified-nat": (VigNat(CFG), 5.13),
        }
        for name, (nf, target_us) in expectations.items():
            one_packet(nf)
            one_packet(nf)  # second packet: the hit path, like steady state
            latency, _ = model.packet_costs(nf)
            total_us = (latency + model.path_overhead_ns(nf)) / 1000
            assert abs(total_us - target_us) < 0.25, (name, total_us)

    def test_linux_latency_near_20us(self):
        model = CostModel()
        nf = NetfilterNat(CFG)
        one_packet(nf)
        one_packet(nf)
        latency, _ = model.packet_costs(nf)
        total_us = (latency + model.path_overhead_ns(nf)) / 1000
        assert 15 < total_us < 25


class TestDeltaAccounting:
    def test_costs_use_counter_deltas(self):
        model = CostModel()
        nf = VigNat(CFG)
        one_packet(nf, 4000)
        first = model.packet_costs(nf)
        one_packet(nf, 4000)
        second = model.packet_costs(nf)
        # Steady-state hit costs a bounded amount, not cumulative probes.
        assert second[0] <= first[0] + 100

    def test_probe_work_grows_cost(self):
        """More hash probing (fuller table) means more latency."""
        model = CostModel()
        nf = VigNat(CFG)
        for i in range(60):  # ~94% full
            one_packet(nf, 4000 + i)
            model.packet_costs(nf)
        one_packet(nf, 9999)  # miss + insert scans a long run
        nearly_full, _ = model.packet_costs(nf)

        model2 = CostModel()
        nf2 = VigNat(CFG)
        one_packet(nf2, 4000)
        model2.packet_costs(nf2)
        one_packet(nf2, 9999)
        nearly_empty, _ = model2.packet_costs(nf2)
        assert nearly_full > nearly_empty


class TestOutliers:
    def test_outliers_are_rare_and_large(self):
        model = CostModel()
        samples = [model.sample_outlier_ns() for _ in range(200_000)]
        hits = [s for s in samples if s > 0]
        assert 1 <= len(hits) <= 40  # ~1/20k probability
        assert all(s > 100_000 for s in hits)

    def test_outliers_deterministic_per_seed(self):
        a = [CostModel(outlier_seed=1).sample_outlier_ns() for _ in range(50_000)]
        b = [CostModel(outlier_seed=1).sample_outlier_ns() for _ in range(50_000)]
        assert a == b

    def test_constants_cover_all_nfs(self):
        for name in ("noop", "unverified-nat", "verified-nat", "linux-nat"):
            assert name in LATENCY_BASE_NS
        assert set(PATH_OVERHEAD_NS) == {"dpdk", "linux"}


class TestSnapshotLifetime:
    def test_fresh_nf_never_inherits_stale_snapshot(self):
        """Snapshots are keyed by the NF object, not its memory address:
        a new NF at a recycled id must start from a clean slate (costs
        can never go negative from a stale large snapshot)."""
        import gc

        model = CostModel()
        for _ in range(20):
            nf = VigNat(CFG)
            for i in range(50):
                one_packet(nf, 4000 + i)
            latency, service = model.packet_costs(nf)
            assert latency > 0 and service > 0
            del nf
            gc.collect()

    def test_weak_snapshots_do_not_leak(self):
        import gc

        model = CostModel()
        for _ in range(5):
            nf = VigNat(CFG)
            one_packet(nf)
            model.packet_costs(nf)
            del nf
        gc.collect()
        assert len(model._last_counters) == 0
