"""The NF application shell."""

import pytest

from repro.nat.bridge import BridgeConfig, VigBridge
from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.net.app import NfApp
from repro.net.dpdk import DpdkRuntime
from repro.packets.builder import make_udp_packet
from repro.packets.pcap import write_pcap_file


def outbound(sport=4000):
    return make_udp_packet("10.0.0.5", "8.8.8.8", sport, 53, device=0)


class TestPollLoop:
    def test_processes_and_transmits(self):
        app = NfApp(VigNat(NatConfig(max_flows=8)))
        app.runtime.inject(0, outbound(), 100)
        assert app.poll(now_us=100) == 1
        transmitted = app.runtime.collect()
        assert len(transmitted) == 1
        assert transmitted[0][0] == 1  # external port

    def test_drops_do_not_leak_buffers(self):
        app = NfApp(VigNat(NatConfig(max_flows=8)))
        cfg = app.nf.config
        for i in range(5):
            unsolicited = make_udp_packet(
                "8.8.8.8", cfg.external_ip, 53, 60_000 + i, device=1
            )
            app.runtime.inject(1, unsolicited, i)
        assert app.poll(now_us=10) == 5
        assert app.runtime.pool.in_flight == 0
        assert app.runtime.collect() == []

    def test_bursts_larger_than_burst_size(self):
        app = NfApp(VigNat(NatConfig(max_flows=64)), burst_size=4)
        for i in range(10):
            app.runtime.inject(0, outbound(sport=4000 + i), i)
        assert app.poll(now_us=10) == 10
        assert app.processed_total == 10

    def test_burst_size_validated(self):
        with pytest.raises(ValueError):
            NfApp(VigNat(NatConfig(max_flows=8)), burst_size=0)


class TestReplay:
    def test_replay_conversation(self):
        app = NfApp(VigNat(NatConfig(max_flows=8)))
        cfg = app.nf.config
        out = app.replay([(100, 0, outbound())])
        ext_port = out[0][2].l4.src_port
        reply = make_udp_packet("8.8.8.8", cfg.external_ip, 53, ext_port, device=1)
        back = app.replay([(200, 1, reply)])
        assert back[0][0] == 0
        assert back[0][2].l4.dst_port == 4000

    def test_replay_pcap_roundtrip(self, tmp_path):
        in_path = str(tmp_path / "in.pcap")
        out_path = str(tmp_path / "out.pcap")
        frames = [
            (1_000 + i, outbound(sport=4000 + i).to_bytes()) for i in range(4)
        ]
        write_pcap_file(in_path, frames)

        app = NfApp(VigNat(NatConfig(max_flows=8)))
        records = app.replay_pcap(in_path, out_path)
        assert len(records) == 4
        for record in records:
            packet = record.packet()
            assert packet.ipv4.src_ip == app.nf.config.external_ip
        from repro.packets.pcap import read_pcap_file

        assert len(read_pcap_file(out_path)) == 4

    def test_bridge_through_the_app(self):
        runtime = DpdkRuntime()
        app = NfApp(VigBridge(BridgeConfig()), runtime)
        frame = outbound()
        frame.device = 0
        out = app.replay([(10, 0, frame)])
        assert out[0][0] == 1  # flooded to the other port


class TestTxBatching:
    def test_tx_grouped_into_bursts(self):
        app = NfApp(VigNat(NatConfig(max_flows=64)), burst_size=8)
        for i in range(20):
            app.runtime.inject(0, outbound(sport=4000 + i), i)
        app.poll(now_us=100)
        # 20 forwarded packets in at most ceil(20/8)+1 tx bursts, far
        # fewer than 20 per-packet transmissions.
        assert app.tx_bursts_total <= 4
        assert app.runtime.port(1).counters.tx_packets == 20
        assert app.runtime.pool.in_flight == 0

    def test_batches_flushed_at_turn_end(self):
        app = NfApp(VigNat(NatConfig(max_flows=8)), burst_size=32)
        app.runtime.inject(0, outbound(), 0)
        app.poll(now_us=10)
        # One packet, batch not full: still transmitted by the flush.
        assert app.runtime.port(1).counters.tx_packets == 1
