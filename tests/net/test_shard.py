"""Sharded data-path invariants, property-tested with Hypothesis.

The sharded NAT is correct only if three things hold for *every* flow
under *every* worker count:

1. the partition is a partition — disjoint, exhaustive port slices;
2. the worker the RSS stage picks for a flow's forward direction is the
   worker whose slice the allocated external port falls in, so the
   return path (steered by port ownership) lands on the same worker;
3. no packet ever touches another worker's state — each worker's own
   counters account for exactly the packets steered to it.

Together these are the sharding soundness argument: per-worker state is
a private NAT verified in isolation, and steering is the only glue.
"""

from hypothesis import given, settings, strategies as st

from repro.nat.config import NatConfig
from repro.nat.flow import flow_id_of_packet
from repro.nat.vignat import VigNat
from repro.net.dpdk import ShardedRuntime
from repro.packets.builder import make_udp_packet

EXT_DEVICE = 1


def config(max_flows=64):
    return NatConfig(
        max_flows=max_flows, expiration_time=60_000_000, start_port=1000
    )


flows = st.lists(
    st.tuples(
        st.integers(min_value=0x0A000001, max_value=0x0A0000FF),  # src ip
        st.integers(min_value=1024, max_value=65535),  # src port
    ),
    min_size=1,
    max_size=24,
    unique=True,
)
worker_counts = st.sampled_from((1, 2, 3, 4, 8))


@settings(max_examples=60, deadline=None)
@given(flows=flows, workers=worker_counts)
def test_forward_worker_owns_the_allocated_port(flows, workers):
    """The steered worker allocates from its own slice, and only it
    holds the flow — so ownership steering finds the reply's worker."""
    runtime = ShardedRuntime(VigNat, config(), workers=workers)
    for src_ip, src_port in flows:
        packet = make_udp_packet(src_ip, "8.8.8.8", src_port, 53, device=0)
        fid = flow_id_of_packet(packet)
        worker = runtime.worker_for(packet)
        assert runtime.inject(0, packet, timestamp=1_000)
        runtime.main_loop_burst(now_us=1_000)

        owner_nf = runtime.nfs[worker]
        assert owner_nf.has_flow(fid)
        ext_port = owner_nf.external_port_of(fid)
        assert runtime.shards[worker].owns_port(ext_port)
        assert runtime.steering.owner_of_port(ext_port) == worker
        for other, nf in enumerate(runtime.nfs):
            if other != worker:
                assert not nf.has_flow(fid)

        # The translated reply steers straight back to the owner.
        reply = make_udp_packet(
            "8.8.8.8", runtime.config.external_ip, 53, ext_port,
            device=EXT_DEVICE,
        )
        assert runtime.worker_for(reply) == worker


@settings(max_examples=60, deadline=None)
@given(flows=flows, workers=worker_counts)
def test_no_cross_worker_state_access(flows, workers):
    """Each worker's own forwarded/dropped counters account for exactly
    the packets steered to it — nothing leaks across workers."""
    runtime = ShardedRuntime(VigNat, config(), workers=workers)
    for src_ip, src_port in flows:
        runtime.inject(
            0, make_udp_packet(src_ip, "8.8.8.8", src_port, 53, device=0),
            timestamp=1_000,
        )
    runtime.main_loop_burst(now_us=1_000, burst_size=64)

    per_worker = runtime.per_worker_counters()
    for worker, counters in enumerate(per_worker):
        handled = counters["forwarded"] + counters["dropped"]
        assert handled == runtime.steered[worker], (worker, counters)
    assert sum(runtime.steered) == len(flows)

    # Aggregation is a plain sum of the private per-worker counters.
    totals = runtime.op_counters()
    for key in ("forwarded", "dropped"):
        assert totals[key] == sum(c[key] for c in per_worker)
    assert runtime.flow_count() == sum(
        nf.flow_count() for nf in runtime.nfs
    )


@settings(max_examples=60, deadline=None)
@given(flows=flows, workers=worker_counts)
def test_flow_affinity_is_stable_across_packets(flows, workers):
    """Every later packet of a flow steers to the worker that opened it."""
    runtime = ShardedRuntime(VigNat, config(), workers=workers)
    for src_ip, src_port in flows:
        packet = make_udp_packet(src_ip, "8.8.8.8", src_port, 53, device=0)
        first = runtime.worker_for(packet)
        for _ in range(3):
            again = make_udp_packet(src_ip, "8.8.8.8", src_port, 53, device=0)
            assert runtime.worker_for(again) == first
