"""The burst-mode data path: rx_burst loss, pool accounting, burst loop."""

import pytest

from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.net.costmodel import CostModel
from repro.net.dpdk import DpdkRuntime
from repro.net.mbuf import Mbuf, MbufPool
from repro.net.moongen import ConstantRateFlows
from repro.net.testbed import Rfc2544Testbed
from repro.packets.builder import make_udp_packet


def pkt(sport=1000, device=0):
    return make_udp_packet("10.0.0.1", "10.0.0.2", sport, 80, device=device)


class TestRxBurstPoolExhaustion:
    """Regression: rx_burst must not lose packets when the pool runs dry.

    The old code popped the packet from the ring first and only then
    tried to allocate a buffer — on pool exhaustion the packet was gone
    and miscounted as an RX drop, even though it could stay queued.
    """

    def test_packet_stays_queued_when_pool_exhausted(self):
        rt = DpdkRuntime(pool_size=2)
        for i in range(3):
            rt.inject(0, pkt(i), i)
        burst = rt.rx_burst(0, 32)
        assert len(burst) == 2
        # The third packet was NOT popped and lost: it is still on the ring.
        assert rt.port(0).rx_pending() == 1
        assert rt.port(0).counters.rx_nombuf == 1
        assert rt.port(0).counters.rx_dropped == 0

    def test_queued_packet_recoverable_after_free(self):
        rt = DpdkRuntime(pool_size=1)
        rt.inject(0, pkt(1), 0)
        rt.inject(0, pkt(2), 1)
        first = rt.rx_burst(0, 32)
        assert len(first) == 1 and first[0].packet.l4.src_port == 1
        assert rt.rx_burst(0, 32) == []  # pool dry: nothing lost
        rt.free(first[0])
        second = rt.rx_burst(0, 32)
        assert len(second) == 1 and second[0].packet.l4.src_port == 2

    def test_empty_ring_does_not_count_nombuf(self):
        rt = DpdkRuntime(pool_size=1)
        rt.inject(0, pkt(), 0)
        held = rt.rx_burst(0, 32)
        assert len(held) == 1
        assert rt.rx_burst(0, 32) == []  # pool dry but ring also empty
        assert rt.port(0).counters.rx_nombuf == 0


class TestMbufPoolAccounting:
    """Regression: freeing a foreign mbuf must not credit past capacity."""

    def test_foreign_free_into_full_pool_raises(self):
        pool = MbufPool(2)
        foreign = Mbuf(packet=pkt())
        with pytest.raises(RuntimeError, match="over-credit"):
            pool.free(foreign)
        assert pool.in_flight == 0  # accounting intact, not negative

    def test_foreign_free_after_round_trip_raises(self):
        pool = MbufPool(1)
        mbuf = pool.alloc(pkt())
        pool.free(mbuf)
        with pytest.raises(RuntimeError, match="over-credit"):
            pool.free(Mbuf(packet=pkt()))

    def test_foreign_free_with_outstanding_buffers_is_undetectable_but_bounded(self):
        # With a buffer genuinely outstanding the pool cannot tell a
        # foreign mbuf from its own — but in_flight can never go below 0.
        pool = MbufPool(1)
        ours = pool.alloc(pkt())
        pool.free(Mbuf(packet=pkt()))  # wrongly credited, pool now "full"
        with pytest.raises(RuntimeError, match="over-credit"):
            pool.free(ours)

    def test_high_water_mark(self):
        pool = MbufPool(4)
        a = pool.alloc(pkt())
        b = pool.alloc(pkt())
        pool.free(a)
        c = pool.alloc(pkt())
        assert pool.high_water == 2
        pool.free(b)
        pool.free(c)
        assert pool.high_water == 2
        assert pool.in_flight == 0


class TestMainLoopBurst:
    def test_roundtrip_through_vignat(self):
        rt = DpdkRuntime(port_count=2)
        nat = VigNat(NatConfig())
        for i in range(10):
            rt.inject(0, pkt(1000 + i), 0)
        processed = rt.main_loop_burst(nat, now_us=1_000, burst_size=4)
        assert processed == 10
        out = rt.collect()
        assert len(out) == 10
        assert all(port == 1 for port, _ts, _p in out)
        assert rt.pool.in_flight == 0  # every buffer freed or transmitted
        # 10 packets in bursts of 4 → ceil(10/4) = 3 bursts.
        assert nat.op_counters()["bursts"] == 3
        assert nat.op_counters()["expiry_scans_amortized"] == 7

    def test_drops_free_buffers_and_are_counted(self):
        rt = DpdkRuntime(port_count=2)
        nat = VigNat(NatConfig())
        # Unsolicited external packets: the NAT drops all of them.
        for i in range(5):
            rt.inject(1, pkt(2000 + i, device=1), 0)
        rt.main_loop_burst(nat, now_us=1_000, burst_size=8)
        assert rt.collect() == []
        assert rt.pool.in_flight == 0
        causes = rt.drop_causes()
        assert causes["nf_drop"] == 5
        assert causes["pool_high_water"] == 5


class TestTestbedBurstMode:
    def _run(self, burst_size, rate_pps=200_000.0, packets=2_000):
        testbed = Rfc2544Testbed(cost_model=CostModel(), burst_size=burst_size)
        nf = VigNat(NatConfig(expiration_time=60_000_000))
        workload = ConstantRateFlows(500, rate_pps, packets, burst=burst_size)
        return testbed.run(nf, workload.events())

    def test_burst_one_matches_legacy_path(self):
        single = self._run(1)
        assert single.avg_burst_fill == 1.0
        assert single.forwarded == 2_000

    def test_bursts_fill_and_cut_per_packet_cost(self):
        single = self._run(1)
        burst = self._run(8)
        assert burst.forwarded == single.forwarded  # nothing lost either way
        assert burst.avg_burst_fill > 4.0
        assert burst.per_packet_busy_ns < single.per_packet_busy_ns

    def test_burst_mode_raises_saturation_throughput(self):
        # Overload both configurations: burst mode serves strictly more.
        single = self._run(1, rate_pps=5_000_000.0, packets=4_000)
        burst = self._run(16, rate_pps=5_000_000.0, packets=4_000)
        assert single.queue_dropped > 0
        assert burst.forwarded > single.forwarded
