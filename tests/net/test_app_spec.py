"""The RuntimeSpec/launch facade and the legacy-constructor shims.

One description, one construction path: a frozen
:class:`~repro.net.app.RuntimeSpec` names the deployment and
:func:`~repro.net.app.launch` builds it; every runtime it can produce
satisfies the same :class:`~repro.net.app.Runtime` protocol. The old
entry points (constructing :class:`ShardedRuntime` directly, the
testbed's ``run_sharded``) keep working but warn — and launching
through a spec must never leak those warnings.
"""

import warnings

import pytest

from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.net.app import (
    EXECUTION_MODES,
    INLINE,
    PROCESS,
    THREADED_DETERMINISTIC,
    InlineRuntime,
    Runtime,
    RuntimeSpec,
    launch,
)
from repro.net.dpdk import ShardedRuntime
from repro.net.moongen import ConstantRateFlows
from repro.net.procrun import ProcessShardedRuntime
from repro.net.testbed import Rfc2544Testbed
from repro.packets.builder import make_udp_packet
from repro.resil.failover import ReplicatedRuntime


def config():
    return NatConfig(
        max_flows=64, expiration_time=60_000_000, start_port=1000
    )


def spec(**overrides):
    base = RuntimeSpec(nf_factory=VigNat, config=config())
    return base.with_(**overrides) if overrides else base


class TestSpecValidation:
    def test_mode_must_be_known(self):
        with pytest.raises(ValueError, match="execution mode"):
            spec(execution="green-threads")
        assert set(EXECUTION_MODES) == {
            INLINE,
            THREADED_DETERMINISTIC,
            PROCESS,
        }

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            spec(workers=0)

    def test_inline_is_single_worker(self):
        with pytest.raises(ValueError, match="single-worker"):
            spec(execution=INLINE, workers=2)

    def test_replication_requires_deterministic_mode(self):
        with pytest.raises(ValueError, match="deterministic"):
            spec(execution=PROCESS, workers=2, replication_lag=0)
        with pytest.raises(ValueError):
            spec(replication_lag=-1)

    def test_with_varies_without_mutating(self):
        base = spec()
        wide = base.with_(workers=4, execution=PROCESS)
        assert base.workers == 1 and base.execution == THREADED_DETERMINISTIC
        assert wide.workers == 4 and wide.execution == PROCESS

    def test_spec_is_frozen_and_comparable(self):
        a, b = spec(workers=2), spec(workers=2)
        assert a == b
        with pytest.raises(Exception):
            a.workers = 3

    def test_fastpath_tri_state_normalizes_booleans(self):
        # The historical bool spelling and the mode name are the same
        # spec: normalization happens at construction, so they compare
        # (and hash) equal.
        assert spec().fastpath == "off"
        assert spec(fastpath=False) == spec(fastpath="off")
        assert spec(fastpath=True) == spec(fastpath="cache")
        assert hash(spec(fastpath=True)) == hash(spec(fastpath="cache"))
        assert spec(fastpath="compiled").fastpath == "compiled"

    def test_fastpath_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="fastpath"):
            spec(fastpath="turbo")
        with pytest.raises(ValueError, match="fastpath"):
            spec(fastpath=1)


class TestLaunch:
    def _exercise(self, runtime):
        """Every launched runtime speaks the one protocol."""
        assert isinstance(runtime, Runtime)
        now = 1_000
        for i in range(6):
            packet = make_udp_packet(
                0x0A000001 + i, "8.8.8.8", 1_024 + i, 53, device=0
            )
            runtime.inject(0, packet, now)
            now += 5
        runtime.main_loop_burst(now, 8)
        assert len(runtime.collect()) == 6
        assert runtime.flow_count() == 6
        assert runtime.op_counters()
        assert runtime.snapshot_metrics()["schema"] == "repro-obs/v1"
        checkpoint = runtime.checkpoint(now_us=now)
        assert checkpoint is not None
        runtime.stop()

    def test_inline(self):
        runtime = launch(spec(execution=INLINE))
        assert isinstance(runtime, InlineRuntime)
        assert runtime.spec.execution == INLINE
        self._exercise(runtime)

    def test_threaded_deterministic(self):
        runtime = launch(spec(workers=2))
        assert isinstance(runtime, ShardedRuntime)
        self._exercise(runtime)

    def test_process(self):
        runtime = launch(spec(workers=2, execution=PROCESS))
        assert isinstance(runtime, ProcessShardedRuntime)
        self._exercise(runtime)

    def test_replicated(self):
        runtime = launch(spec(workers=2, replication_lag=4))
        assert isinstance(runtime, ReplicatedRuntime)
        self._exercise(runtime)

    def test_launch_never_warns(self):
        """The blessed path must not trip its own deprecation shims."""
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for s in (
                spec(execution=INLINE),
                spec(workers=2),
                spec(workers=2, execution=PROCESS),
                spec(workers=2, replication_lag=0),
            ):
                launch(s).stop()

    def test_launch_tags_the_spec(self):
        s = spec(workers=2)
        runtime = launch(s)
        assert runtime.spec is s
        runtime.stop()

    @pytest.mark.parametrize("mode", ["cache", "compiled"])
    def test_fastpath_modes_launch_everywhere(self, mode):
        """Every execution mode accepts the tri-state fastpath value and
        wires the wrapper through (visible via its counters)."""
        for s in (
            spec(execution=INLINE, fastpath=mode),
            spec(workers=2, fastpath=mode),
            spec(workers=2, execution=PROCESS, fastpath=mode),
        ):
            runtime = launch(s)
            self._exercise(runtime)

    def test_compiled_inline_runtime_compiles(self):
        """Inline + compiled: repeated flows install closures, and the
        compile counters surface through the runtime facade."""
        runtime = launch(spec(execution=INLINE, fastpath="compiled"))
        now = 1_000
        for t in range(3):
            packet = make_udp_packet(
                "10.0.0.1", "8.8.8.8", 1_024, 53, device=0
            )
            runtime.inject(0, packet, now + t)
            runtime.main_loop_burst(now + t, 8)
        counters = runtime.op_counters()
        assert counters["fastpath_compiles"] >= 1
        assert counters["fastpath_compile_rejected"] == 0
        runtime.stop()


class TestDeprecationShims:
    def test_direct_sharded_runtime_warns(self):
        with pytest.deprecated_call(match="RuntimeSpec"):
            ShardedRuntime(VigNat, config(), workers=2)

    def test_run_sharded_warns_and_still_works(self):
        from repro.net.rss import NatSteering

        testbed = Rfc2544Testbed(workers=2)
        workload = ConstantRateFlows(16, 1_000_000.0, 64, burst=8)
        shards = config().partition(2)
        nfs = [VigNat(shard) for shard in shards]
        steering = NatSteering(shards)
        with pytest.deprecated_call(match="run_spec"):
            result = testbed.run_sharded(
                nfs, steering.worker_for, workload.events()
            )
        assert sum(result.steered) > 0

    def test_run_spec_replaces_run_sharded(self):
        testbed = Rfc2544Testbed(workers=2)
        workload = ConstantRateFlows(16, 1_000_000.0, 64, burst=8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = testbed.run_spec(
                spec(workers=2), workload.events()
            )
        assert sum(result.steered) > 0
        assert result.nfs is not None
        assert result.op_counters()

    def test_run_spec_rejects_width_mismatch(self):
        testbed = Rfc2544Testbed(workers=2)
        with pytest.raises(ValueError):
            testbed.run_spec(spec(workers=4), iter(()))

    def test_run_spec_refuses_replication(self):
        testbed = Rfc2544Testbed(workers=2)
        with pytest.raises(ValueError):
            testbed.run_spec(
                spec(workers=2, replication_lag=0), iter(())
            )


# -- property: with_() round-trips every field --------------------------------
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.nat.fastpath import normalize_fastpath  # noqa: E402
from repro.net.procrun import TRANSPORTS  # noqa: E402


@st.composite
def spec_overrides(draw):
    """Valid override sets covering every ``with_()``-able field, with
    the cross-field constraints the spec validates (inline is
    single-worker, supervision and replication are mode-specific)."""
    execution = draw(st.sampled_from(EXECUTION_MODES))
    overrides = {
        "execution": execution,
        "workers": 1 if execution == INLINE else draw(st.integers(1, 8)),
        "fastpath": draw(
            st.sampled_from([False, True, "off", "cache", "compiled"])
        ),
        "burst_size": draw(st.integers(1, 512)),
        "port_count": draw(st.integers(2, 8)),
        "rx_capacity": draw(st.integers(1, 4_096)),
        "pool_size": draw(st.integers(1, 8_192)),
        "turn_timeout_s": draw(
            st.floats(0.001, 300.0, allow_nan=False, allow_infinity=False)
        ),
        "transport": draw(st.sampled_from(TRANSPORTS)),
        "supervise": draw(st.booleans()) if execution == PROCESS else False,
        "ring_slots": draw(st.integers(1, 8_192)),
        "ring_slot_bytes": draw(st.integers(1, 4_096)),
    }
    if execution == THREADED_DETERMINISTIC and draw(st.booleans()):
        overrides["replication_lag"] = draw(st.integers(0, 128))
    return overrides


class TestWithRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(overrides=spec_overrides())
    def test_every_field_round_trips(self, overrides):
        base = spec()
        varied = base.with_(**overrides)
        for name, value in overrides.items():
            expected = normalize_fastpath(value) if name == "fastpath" else value
            assert getattr(varied, name) == expected
        # Fields not named ride along untouched...
        assert varied.nf_factory is base.nf_factory
        assert varied.config is base.config
        assert varied.fault_plan is base.fault_plan
        # ...the base spec is never mutated, and restoring the named
        # fields to their base values reproduces it exactly.
        reverted = varied.with_(
            **{name: getattr(base, name) for name in overrides}
        )
        assert reverted == base
