"""LatencyStats math and workload-source details."""

import math

import pytest

from repro.net.moongen import BackgroundFlows, ConstantRateFlows
from repro.net.testbed import LatencyStats

US = 1_000
S = 1_000_000_000


class TestLatencyStats:
    def test_average(self):
        stats = LatencyStats()
        for v in (1_000, 2_000, 3_000):
            stats.add(v)
        assert stats.average_us() == pytest.approx(2.0)

    def test_empty_average_is_nan(self):
        assert math.isnan(LatencyStats().average_us())

    def test_percentile(self):
        stats = LatencyStats()
        for v in range(1, 101):
            stats.add(v * US)
        assert stats.percentile_us(0.5) == pytest.approx(51.0)
        assert stats.percentile_us(0.99) == pytest.approx(100.0)

    def test_ccdf_is_monotone_and_ends_at_zero(self):
        stats = LatencyStats()
        for v in (1, 1, 2, 3, 3, 3, 9):
            stats.add(v * US)
        points = stats.ccdf()
        probabilities = [p for _x, p in points]
        assert probabilities == sorted(probabilities, reverse=True)
        assert points[-1][1] == 0.0
        # P[latency > 1us] = 5/7.
        assert points[0] == (1.0, pytest.approx(5 / 7))

    def test_ccdf_deduplicates_values(self):
        stats = LatencyStats()
        for v in (5, 5, 5):
            stats.add(v * US)
        assert len(stats.ccdf()) == 1

    def test_confidence_interval(self):
        stats = LatencyStats()
        for v in (1_000,) * 100:
            stats.add(v)
        assert stats.confidence_interval_us() == pytest.approx(0.0)
        stats.add(2_000)
        assert stats.confidence_interval_us() > 0

    def test_confidence_interval_needs_two_samples(self):
        stats = LatencyStats()
        stats.add(1_000)
        assert math.isnan(stats.confidence_interval_us())


class TestSources:
    def test_prefill_events_one_per_flow_before_start(self):
        source = BackgroundFlows(10, total_pps=100, duration_ns=S, start_ns=S)
        prefill = list(source.prefill_events())
        assert len(prefill) == 10
        assert all(e.time_ns < S for e in prefill)
        tuples = {(e.packet.ipv4.src_ip, e.packet.l4.src_port) for e in prefill}
        assert len(tuples) == 10

    def test_constant_rate_spacing(self):
        source = ConstantRateFlows(4, rate_pps=1e6, packet_count=100)
        events = list(source.events())
        assert len(events) == 100
        gaps = {
            events[i + 1].time_ns - events[i].time_ns for i in range(99)
        }
        assert gaps == {1_000}  # 1 Mpps -> 1 us spacing

    def test_constant_rate_round_robin(self):
        source = ConstantRateFlows(3, rate_pps=1e5, packet_count=6)
        ips = [e.packet.ipv4.src_ip for e in source.events()]
        assert ips[:3] == ips[3:]

    def test_background_requires_positive_args(self):
        with pytest.raises(ValueError):
            BackgroundFlows(0, total_pps=100, duration_ns=S)
        with pytest.raises(ValueError):
            BackgroundFlows(5, total_pps=0, duration_ns=S)

    def test_probe_phase_never_aligned_to_round_intervals(self):
        """Probe times avoid multiples of common generator intervals."""
        from repro.net.moongen import ProbeFlows

        source = ProbeFlows(flow_count=10, per_flow_pps=5.0, duration_ns=S)
        times = [e.time_ns for e in source.events()]
        assert times
        assert all(t % 50_000 != 0 for t in times)
