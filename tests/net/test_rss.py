"""RSS hashing and NAT-aware steering (the sharded data path's front end).

Covers the steering invariants the sharded runtime relies on:
determinism, fragment/ICMP hash consistency (a fragmented datagram or an
ICMP error must land on the same queue as its flow's other non-L4
traffic), and the NAT twist — external-side traffic is steered by
external-port *ownership*, including ICMP errors whose port only exists
inside the RFC 792 embedded quote.
"""

import pytest

from repro.nat.config import NatConfig
from repro.nat.icmp_ext import IcmpAwareNat
from repro.net.dpdk import ShardedRuntime
from repro.net.rss import (
    MORE_FRAGMENTS,
    NatSteering,
    is_fragment,
    rss_hash_packet,
    rss_queue,
)
from repro.net.nic import RssNic
from repro.packets.addresses import ip_to_int
from repro.packets.builder import make_udp_packet
from repro.packets.headers import (
    EthernetHeader,
    Ipv4Header,
    PROTO_ICMP,
    PROTO_UDP,
    Packet,
    UdpHeader,
)
from repro.packets.icmp import ICMP_DEST_UNREACHABLE, IcmpMessage

CFG = NatConfig(max_flows=64, expiration_time=60_000_000, start_port=1000)

HOST = "10.0.0.5"
REMOTE = "8.8.8.8"


def udp(src, dst, sport, dport, device=0) -> Packet:
    return make_udp_packet(src, dst, sport, dport, device=device)


def icmp_packet(src, dst, message: IcmpMessage, device: int) -> Packet:
    payload = message.pack(fill_checksum=True)
    ipv4 = Ipv4Header(
        protocol=PROTO_ICMP,
        src_ip=ip_to_int(src) if isinstance(src, str) else src,
        dst_ip=ip_to_int(dst) if isinstance(dst, str) else dst,
        total_length=20 + len(payload),
    )
    return Packet(eth=EthernetHeader(), ipv4=ipv4, payload=payload, device=device)


def error_about(translated) -> IcmpMessage:
    """ICMP Port Unreachable quoting the translated outbound packet."""
    inner_ip = Ipv4Header(
        protocol=PROTO_UDP,
        src_ip=translated.ipv4.src_ip,
        dst_ip=translated.ipv4.dst_ip,
        total_length=28,
    )
    body = inner_ip.pack(fill_checksum=True)
    body += translated.l4.src_port.to_bytes(2, "big")
    body += translated.l4.dst_port.to_bytes(2, "big")
    body += b"\x00\x1c\x00\x00"  # UDP length/checksum stub
    return IcmpMessage(icmp_type=ICMP_DEST_UNREACHABLE, code=3, body=body)


class TestRssHash:
    def test_deterministic_per_flow(self):
        a = udp(HOST, REMOTE, 4000, 53)
        b = udp(HOST, REMOTE, 4000, 53)
        assert rss_hash_packet(a) == rss_hash_packet(b)

    def test_distinct_flows_spread_over_queues(self):
        queues = {
            rss_queue(udp(f"10.0.{i // 256}.{i % 256}", REMOTE, 4000 + i, 53), 4)
            for i in range(256)
        }
        assert queues == {0, 1, 2, 3}

    def test_first_fragment_hashes_like_continuation(self):
        # First fragment: MF set, ports present. Continuation: offset > 0,
        # no L4 header. Both must hash alike — to the dst-IP-only hash —
        # or a fragmented datagram is split across workers.
        first = udp(HOST, REMOTE, 4000, 53)
        first.ipv4.flags = MORE_FRAGMENTS
        continuation = Packet(
            eth=EthernetHeader(),
            ipv4=Ipv4Header(
                protocol=PROTO_UDP,
                src_ip=ip_to_int(HOST),
                dst_ip=ip_to_int(REMOTE),
                fragment_offset=185,
            ),
            payload=b"\x00" * 32,
        )
        assert is_fragment(first) and is_fragment(continuation)
        assert rss_hash_packet(first) == rss_hash_packet(continuation)

    def test_fragment_hash_ignores_ports_and_src(self):
        frag_a = udp(HOST, REMOTE, 4000, 53)
        frag_a.ipv4.flags = MORE_FRAGMENTS
        frag_b = udp("10.0.0.77", REMOTE, 9999, 123)
        frag_b.ipv4.flags = MORE_FRAGMENTS
        assert rss_hash_packet(frag_a) == rss_hash_packet(frag_b)

    def test_icmp_hashes_like_fragments_to_same_destination(self):
        message = IcmpMessage(icmp_type=8, code=0, body=b"ping")
        echo = icmp_packet(HOST, REMOTE, message, device=0)
        frag = udp(HOST, REMOTE, 4000, 53)
        frag.ipv4.flags = MORE_FRAGMENTS
        assert rss_hash_packet(echo) == rss_hash_packet(frag)

    def test_unfragmented_uses_the_full_tuple(self):
        base = udp(HOST, REMOTE, 4000, 53)
        other_port = udp(HOST, REMOTE, 4001, 53)
        assert rss_hash_packet(base) != rss_hash_packet(other_port)

    def test_non_ip_frame_lands_on_queue_zero(self):
        arp = Packet(eth=EthernetHeader(ethertype=0x0806))
        assert rss_hash_packet(arp) == 0
        assert rss_queue(arp, 8) == 0

    def test_queue_count_must_be_positive(self):
        with pytest.raises(ValueError):
            rss_queue(udp(HOST, REMOTE, 1, 2), 0)


class TestRssNic:
    def test_counts_per_queue(self):
        nic = RssNic(4)
        for i in range(100):
            nic.select(udp(f"10.1.0.{i}", REMOTE, 4000 + i, 53))
        assert sum(nic.queue_packets) == 100

    def test_bad_steer_function_rejected(self):
        nic = RssNic(2, steer=lambda packet: 7)
        with pytest.raises(ValueError):
            nic.select(udp(HOST, REMOTE, 1, 2))

    def test_queue_count_validated(self):
        with pytest.raises(ValueError):
            RssNic(0)


class TestNatSteering:
    def test_requires_shards(self):
        with pytest.raises(ValueError):
            NatSteering(())

    def test_rejects_mismatched_layouts(self):
        a, b = CFG.partition(2)
        import dataclasses

        skewed = dataclasses.replace(b, external_ip=ip_to_int("198.51.100.9"))
        with pytest.raises(ValueError):
            NatSteering((a, skewed))

    def test_rejects_overlapping_port_ranges(self):
        a, _ = CFG.partition(2)
        with pytest.raises(ValueError):
            NatSteering((a, a))

    def test_owner_of_port_covers_the_partition(self):
        shards = CFG.partition(4)
        steering = NatSteering(shards)
        for worker, shard in enumerate(shards):
            for port in shard.port_range():
                assert steering.owner_of_port(port) == worker
        assert steering.owner_of_port(CFG.start_port - 1) is None
        assert steering.owner_of_port(CFG.end_port + 1) is None

    def test_external_reply_steered_by_port_ownership(self):
        shards = CFG.partition(4)
        steering = NatSteering(shards)
        for worker, shard in enumerate(shards):
            reply = udp(REMOTE, CFG.external_ip, 53, shard.start_port, device=1)
            assert steering.worker_for(reply) == worker

    def test_internal_traffic_never_port_steered(self):
        # A packet on the internal device whose dst port happens to fall
        # in the external range must use the hash, not port ownership.
        steering = NatSteering(CFG.partition(4))
        packet = udp(HOST, REMOTE, 4000, CFG.start_port, device=0)
        assert steering.worker_for(packet) == rss_queue(packet, 4)

    def test_external_fragment_falls_back_to_hash(self):
        steering = NatSteering(CFG.partition(4))
        frag = udp(REMOTE, CFG.external_ip, 53, CFG.start_port, device=1)
        frag.ipv4.flags = MORE_FRAGMENTS
        assert steering.worker_for(frag) == rss_queue(frag, 4)

    def test_unowned_external_port_falls_back_to_hash(self):
        steering = NatSteering(CFG.partition(4))
        stray = udp(REMOTE, CFG.external_ip, 53, CFG.end_port + 100, device=1)
        assert steering.worker_for(stray) == rss_queue(stray, 4)


class TestIcmpErrorSteering:
    """Regression: ICMP errors about a translated flow must reach the
    flow's worker. The error's only link to the flow is the external
    port inside the RFC 792 quote — the outer header has no ports at
    all, so a plain (even symmetric) RSS hash steers it arbitrarily."""

    def _open_flow_on_each_worker(self, runtime):
        """Send one UDP flow per worker; return [(worker, translated)]."""
        opened = []
        seen = set()
        sport = 4000
        while len(seen) < runtime.workers:
            packet = udp(HOST, REMOTE, sport, 53, device=0)
            worker = runtime.worker_for(packet)
            sport += 1
            if worker in seen:
                continue
            seen.add(worker)
            assert runtime.inject(0, packet, timestamp=1_000)
            runtime.main_loop_burst(now_us=1_000)
            (_, _, translated) = runtime.collect()[-1]
            opened.append((worker, translated))
        return opened

    def test_error_steered_to_owning_worker(self):
        runtime = ShardedRuntime(IcmpAwareNat, CFG, workers=4)
        for worker, translated in self._open_flow_on_each_worker(runtime):
            error = icmp_packet(
                REMOTE, CFG.external_ip, error_about(translated), device=1
            )
            assert runtime.steering.owner_of_port(translated.l4.src_port) == worker
            assert runtime.worker_for(error) == worker

    def test_error_delivered_end_to_end(self):
        runtime = ShardedRuntime(IcmpAwareNat, CFG, workers=4)
        for worker, translated in self._open_flow_on_each_worker(runtime):
            error = icmp_packet(
                REMOTE, CFG.external_ip, error_about(translated), device=1
            )
            assert runtime.inject(1, error, timestamp=2_000)
            runtime.main_loop_burst(now_us=2_000)
            (_port, _ts, delivered) = runtime.collect()[-1]
            assert delivered.device == CFG.internal_device
            assert delivered.ipv4.dst_ip == ip_to_int(HOST)

    def test_error_with_foreign_quote_falls_back_to_hash(self):
        # A quote whose source is not our external IP is not about one of
        # our translations — no port to recover, hash fallback applies.
        steering = NatSteering(CFG.partition(4))
        foreign = udp("192.0.2.99", REMOTE, CFG.start_port, 53)
        error = icmp_packet(
            REMOTE, CFG.external_ip, error_about(foreign), device=1
        )
        assert steering.worker_for(error) == rss_queue(error, 4)

    def test_truncated_icmp_payload_does_not_crash(self):
        steering = NatSteering(CFG.partition(4))
        broken = icmp_packet(REMOTE, CFG.external_ip, IcmpMessage(
            icmp_type=ICMP_DEST_UNREACHABLE, code=3, body=b"\x45"
        ), device=1)
        assert 0 <= steering.worker_for(broken) < 4
