"""Link impairment: seeded jitter and wire loss."""

import pytest

from repro.nat.noop import NoopForwarder
from repro.net.costmodel import CostModel
from repro.net.link import LinkModel
from repro.net.moongen import BackgroundFlows
from repro.net.testbed import Rfc2544Testbed

S = 1_000_000_000


def run_with(link):
    testbed = Rfc2544Testbed(cost_model=CostModel(), link=link)
    source = BackgroundFlows(4, total_pps=2_000, duration_ns=S)
    return testbed.run(NoopForwarder(), source.events())


class TestLinkModel:
    def test_clean_link_default(self):
        result = run_with(None)
        assert result.wire_dropped == 0

    def test_loss_rate_approximated(self):
        result = run_with(LinkModel(loss_probability=0.1, seed=7))
        fraction = result.wire_dropped / result.offered
        assert 0.05 < fraction < 0.15
        assert result.forwarded == result.offered - result.wire_dropped

    def test_jitter_widens_latency(self):
        clean = run_with(None)
        jittery = run_with(LinkModel(jitter_ns=2_000, seed=7))
        assert jittery.all_latency.average_us() > clean.all_latency.average_us()
        spread = (
            jittery.all_latency.percentile_us(0.99)
            - jittery.all_latency.percentile_us(0.01)
        )
        assert spread >= 1.5  # ~2us uniform jitter

    def test_deterministic_per_seed(self):
        a = run_with(LinkModel(loss_probability=0.05, jitter_ns=500, seed=3))
        b = run_with(LinkModel(loss_probability=0.05, jitter_ns=500, seed=3))
        assert a.wire_dropped == b.wire_dropped
        assert a.all_latency.samples == b.all_latency.samples

    def test_relative_ordering_survives_impairment(self):
        """The paper's headline ordering holds on an imperfect wire."""
        from repro.nat.config import NatConfig
        from repro.nat.unverified import UnverifiedNat
        from repro.nat.vignat import VigNat

        cfg = NatConfig(max_flows=256)
        averages = {}
        for nf in (NoopForwarder(), UnverifiedNat(cfg), VigNat(cfg)):
            testbed = Rfc2544Testbed(
                cost_model=CostModel(), link=LinkModel(jitter_ns=1_000, seed=11)
            )
            source = BackgroundFlows(16, total_pps=2_000, duration_ns=S)
            averages[nf.name] = testbed.run(nf, source.events()).all_latency.average_us()
        assert averages["noop"] < averages["unverified-nat"] < averages["verified-nat"]

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(loss_probability=1.5)
        with pytest.raises(ValueError):
            LinkModel(jitter_ns=-1)
