"""Port-ownership validation on restore.

A checkpoint that claims ports it must not own — outside the shard's
range, bound twice, or already allocated here — would silently corrupt
NAT ownership if applied: two flows answering for one external port, or
one worker squatting on a sibling shard's slice. The allocator and both
NFs refuse such checkpoints atomically (no partial application).
"""

import pytest

from repro.libvig.port_allocator import (
    PortAllocator,
    PortRestoreError,
)
from repro.nat.config import NatConfig
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.packets.builder import make_udp_packet
from repro.resil.checkpoint import snapshot, restore

CFG = NatConfig(max_flows=8, expiration_time=2_000_000, start_port=1000)


class TestPortAllocatorRestore:
    def test_restores_a_valid_set(self):
        alloc = PortAllocator(1000, 8)
        alloc.restore_ports([1000, 1003, 1007])
        assert alloc.allocated_ports() == (1000, 1003, 1007)
        assert alloc.available() == 5
        # Fresh allocations never collide with the restored set.
        handed_out = {alloc.allocate() for _ in range(5)}
        assert handed_out.isdisjoint({1000, 1003, 1007})

    @pytest.mark.parametrize("bad", [999, 1008, 65_535])
    def test_rejects_out_of_shard_port(self, bad):
        alloc = PortAllocator(1000, 8)
        with pytest.raises(PortRestoreError, match="different shard"):
            alloc.restore_ports([1001, bad])

    def test_rejects_double_allocated_port(self):
        alloc = PortAllocator(1000, 8)
        with pytest.raises(PortRestoreError, match="double-allocated"):
            alloc.restore_ports([1001, 1002, 1001])

    def test_rejects_port_already_allocated_here(self):
        alloc = PortAllocator(1000, 8)
        taken = alloc.allocate()
        with pytest.raises(PortRestoreError, match="already allocated"):
            alloc.restore_ports([taken])

    def test_rejection_applies_nothing(self):
        # Validation is all-or-nothing: a rejected set leaves the
        # allocator exactly as it was.
        alloc = PortAllocator(1000, 8)
        with pytest.raises(PortRestoreError):
            alloc.restore_ports([1000, 1001, 9999])
        assert alloc.allocated_ports() == ()
        assert alloc.available() == 8


def _vignat_checkpoint(count=3):
    nat = VigNat(CFG)
    for i in range(count):
        nat.process(
            make_udp_packet("10.0.0.1", "8.8.8.8", 4_000 + i, 53, device=0),
            1_000 + i,
        )
    return snapshot(nat, now_us=2_000)


class TestVigNatRestoreValidation:
    def test_rejects_port_index_mismatch(self):
        # VigNat's allocation invariant: external port == start + index.
        ckpt = _vignat_checkpoint()
        ckpt.state["flows"][0][3] += 1
        with pytest.raises(ValueError, match="start_port \\+ index"):
            restore(VigNat(CFG), ckpt)

    def test_rejects_duplicate_internal_tuple(self):
        ckpt = _vignat_checkpoint()
        ckpt.state["flows"][1][2] = list(ckpt.state["flows"][0][2])
        with pytest.raises(ValueError, match="appears twice"):
            restore(VigNat(CFG), ckpt)

    def test_rejects_out_of_shard_index_via_allocator(self):
        # An index past capacity maps to a port outside the shard's
        # range — the PortAllocator cross-check refuses it.
        ckpt = _vignat_checkpoint(1)
        index = CFG.max_flows + 2
        ckpt.state["flows"][0][0] = index
        ckpt.state["flows"][0][3] = CFG.start_port + index
        with pytest.raises((PortRestoreError, ValueError)):
            restore(VigNat(CFG), ckpt)

    def test_cross_shard_checkpoint_refused_by_config(self):
        # Shard 0's checkpoint into shard 1's NF: caught at the config
        # layer (disjoint port ranges) before state is even parsed.
        shard0, shard1 = CFG.partition(2)
        nat = VigNat(shard0)
        nat.process(
            make_udp_packet("10.0.0.1", "8.8.8.8", 4_000, 53, device=0), 1_000
        )
        from repro.resil.checkpoint import CheckpointError

        with pytest.raises(CheckpointError, match="config mismatch"):
            restore(VigNat(shard1), snapshot(nat, now_us=2_000))


def _unverified_checkpoint(count=3):
    nat = UnverifiedNat(CFG)
    for i in range(count):
        nat.process(
            make_udp_packet("10.0.0.1", "8.8.8.8", 4_000 + i, 53, device=0),
            1_000 + i,
        )
    return snapshot(nat, now_us=2_000)


class TestUnverifiedRestoreValidation:
    def test_rejects_port_bound_twice(self):
        ckpt = _unverified_checkpoint()
        ckpt.state["flows"][1][2] = ckpt.state["flows"][0][2]
        # Make the 5-tuples distinct so the port check is what fires.
        ckpt.state["flows"][1][1] = list(ckpt.state["flows"][1][1])
        with pytest.raises(ValueError, match="two flows"):
            restore(UnverifiedNat(CFG), ckpt)

    def test_rejects_port_never_handed_out(self):
        # A live port at/beyond next_port was never allocated by the
        # bump allocator this checkpoint also carries.
        ckpt = _unverified_checkpoint()
        ckpt.state["flows"][0][2] = ckpt.state["next_port"] + 5
        with pytest.raises(ValueError, match="handed-out range"):
            restore(UnverifiedNat(CFG), ckpt)

    def test_rejects_duplicate_internal_tuple(self):
        ckpt = _unverified_checkpoint()
        ckpt.state["flows"][1][1] = list(ckpt.state["flows"][0][1])
        with pytest.raises(ValueError, match="appears twice"):
            restore(UnverifiedNat(CFG), ckpt)

    def test_rejects_live_port_on_free_list(self):
        ckpt = _unverified_checkpoint()
        live_port = ckpt.state["flows"][0][2]
        ckpt.state["free_ports"] = [live_port]
        with pytest.raises(ValueError, match="free list"):
            restore(UnverifiedNat(CFG), ckpt)
