"""Replication and active/standby failover.

Unit half: the lagged channel's in-flight window and the standby's
mirroring rules (age order preserved, out-of-order deltas tolerated).
Integration half: :class:`ReplicatedRuntime` kill-and-promote — zero
established-flow loss at lag 0, loss bounded by the cut's in-flight
window at lag > 0, transmitted packets surviving the kill, the modeled
promotion blackout, and the steering repartition.
"""

import pytest

from repro.nat.config import NatConfig
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.net.rss import NatSteering
from repro.packets.builder import make_udp_packet
from repro.resil.checkpoint import restore
from repro.resil.failover import ReplicatedRuntime
from repro.resil.replication import FlowDelta, ReplicationChannel, StandbyReplica

CFG = NatConfig(max_flows=64, expiration_time=60_000_000, start_port=1000)


class TestReplicationChannel:
    def test_lag_zero_is_synchronous(self):
        channel = ReplicationChannel(lag=0)
        delta = FlowDelta("create", 1, None, 10)
        assert channel.publish(delta) == [delta]
        assert channel.in_flight_count() == 0

    def test_lag_keeps_newest_in_flight(self):
        channel = ReplicationChannel(lag=2)
        deltas = [FlowDelta("touch", i, None, i) for i in range(5)]
        delivered = []
        for delta in deltas:
            delivered.extend(channel.publish(delta))
        assert delivered == deltas[:3]
        assert channel.in_flight_count() == 2
        assert channel.lost_in_flight() == deltas[3:]
        assert channel.lost_total == 2

    def test_drain_is_a_sync_barrier(self):
        channel = ReplicationChannel(lag=3)
        deltas = [FlowDelta("touch", i, None, i) for i in range(3)]
        for delta in deltas:
            channel.publish(delta)
        assert channel.drain() == deltas
        assert channel.in_flight_count() == 0
        assert channel.delivered_total == 3

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError, match="lag"):
            ReplicationChannel(lag=-1)


class TestStandbyReplica:
    def test_only_replicable_nfs(self):
        with pytest.raises(ValueError, match="not supported"):
            StandbyReplica("noop", CFG)

    def test_mirrors_create_touch_free(self):
        replica = StandbyReplica("unverified-nat", CFG)
        fid = type("Fid", (), dict(
            src_ip=1, src_port=2, dst_ip=3, dst_port=4, protocol=17
        ))()
        replica.apply(FlowDelta("create", 1000, fid, 10))
        assert replica.flow_count() == 1
        replica.apply(FlowDelta("touch", 1000, None, 20))
        replica.apply(FlowDelta("free", 1000, None, 30))
        assert replica.flow_count() == 0
        assert replica.out_of_order_total == 0

    def test_out_of_order_deltas_tolerated(self):
        replica = StandbyReplica("unverified-nat", CFG)
        replica.apply(FlowDelta("touch", 1234, None, 10))  # never created here
        replica.apply(FlowDelta("free", 1234, None, 20))
        assert replica.flow_count() == 0
        assert replica.out_of_order_total == 2

    def test_mirror_restores_into_a_real_nf(self):
        # The promotion path end to end, but driven by a live NF: every
        # delta the active emits replays onto the standby, and the
        # synthesized checkpoint restores into a fresh NF holding the
        # same flows.
        active = VigNat(CFG)
        replica = StandbyReplica("verified-nat", CFG)
        active.delta_sink(
            lambda raw: replica.apply(FlowDelta(*raw))
        )
        for i in range(5):
            active.process(
                make_udp_packet("10.0.0.1", "8.8.8.8", 4_000 + i, 53, device=0),
                1_000 + i,
            )
        assert replica.flow_count() == active.flow_count() == 5
        fresh = VigNat(CFG)
        restore(fresh, replica.to_checkpoint(2_000))
        assert fresh.flow_count() == 5
        # The restored NF translates a reply for a replicated flow.
        ext_port = CFG.start_port  # VigNat: first flow got start_port + 0
        outputs = fresh.process(
            make_udp_packet("8.8.8.8", CFG.external_ip, 53, ext_port, device=1),
            3_000,
        )
        assert outputs and outputs[0].device == CFG.internal_device


class TestSteeringReassign:
    def test_identity_by_default_and_reassign(self):
        shards = CFG.partition(2)
        steering = NatSteering(shards)
        port0 = shards[0].start_port
        port1 = shards[1].start_port
        assert steering.owner_of_port(port0) == 0
        assert steering.owner_of_port(port1) == 1
        steering.reassign(1, 0)  # shard 1's flows now served by slot 0
        assert steering.owner_of_port(port1) == 0
        assert steering.shard_of_port(port1) == 1  # the shard is unchanged

    @pytest.mark.parametrize("shard,slot", [(-1, 0), (2, 0), (0, -1), (0, 2)])
    def test_reassign_validates_bounds(self, shard, slot):
        steering = NatSteering(CFG.partition(2))
        with pytest.raises(ValueError):
            steering.reassign(shard, slot)


def _establish(runtime, count, now=1_000):
    """Open ``count`` outbound flows; returns ({marker: ext_port}, now).

    The reply destination port 20_000+i marks each flow, surviving the
    source rewrite.
    """
    for i in range(count):
        runtime.inject(
            0,
            make_udp_packet("10.0.0.1", "8.8.8.8", 1_024 + i, 20_000 + i, device=0),
            now,
        )
        now += 5
    now += 5
    runtime.main_loop_burst(now)
    ext_of = {}
    for _, _, out in runtime.collect():
        if out.ipv4.src_ip == CFG.external_ip:
            ext_of[out.l4.dst_port - 20_000] = out.l4.src_port
    assert len(ext_of) == count
    return ext_of, now


def _reply(marker, ext_port):
    return make_udp_packet(
        "8.8.8.8", CFG.external_ip, 20_000 + marker, ext_port, device=1
    )


@pytest.mark.parametrize("nf_ctor", [VigNat, UnverifiedNat])
class TestKillAndPromote:
    def test_lag0_loses_no_flows(self, nf_ctor):
        runtime = ReplicatedRuntime(nf_ctor, CFG, workers=2, lag=0)
        ext_of, now = _establish(runtime, 24)
        flows_before = runtime.flow_count()

        runtime.kill_worker(1, at_us=now + 1)
        now += 2
        runtime.main_loop_burst(now)

        (report,) = runtime.reports
        assert report.worker == 1
        assert report.flows_lost == 0
        assert report.deltas_lost == 0
        assert report.flows_recovered == report.flows_at_kill
        assert runtime.flow_count() == flows_before

        # Every flow — including those the dead worker held — still
        # translates once the promoted standby's blackout ends.
        now = report.ready_at_us + 10
        for marker, ext_port in ext_of.items():
            assert runtime.inject(1, _reply(marker, ext_port), now), marker
        now += 5
        runtime.main_loop_burst(now)
        delivered = runtime.collect()
        assert len(delivered) == len(ext_of)

    def test_lag_bounds_the_loss(self, nf_ctor):
        lag = 4
        runtime = ReplicatedRuntime(nf_ctor, CFG, workers=2, lag=lag)
        _, now = _establish(runtime, 24)

        runtime.kill_worker(1, at_us=now + 1)
        now += 2
        runtime.main_loop_burst(now)

        (report,) = runtime.reports
        assert report.deltas_lost == lag  # exactly the in-flight window
        assert 0 <= report.flows_lost <= lag
        assert (
            report.flows_recovered + report.flows_lost == report.flows_at_kill
        )

    def test_transmitted_packets_survive_the_kill(self, nf_ctor):
        # Packets the dead worker had already handed to TX are on the
        # wire; the promotion must not discard them with the runtime.
        runtime = ReplicatedRuntime(nf_ctor, CFG, workers=2, lag=0)
        now = 1_000
        for i in range(16):
            runtime.inject(
                0,
                make_udp_packet(
                    "10.0.0.1", "8.8.8.8", 1_024 + i, 20_000 + i, device=0
                ),
                now + i,
            )
        now += 20
        runtime.main_loop_burst(now)  # processed and transmitted...
        # ...but NOT collected before the kill.
        runtime.kill_worker(1, at_us=now + 1)
        now += 2
        runtime.main_loop_burst(now)
        assert len(runtime.collect()) == 16
        (report,) = runtime.reports
        assert report.packets_lost_queue == 0

    def test_queued_packets_die_with_the_worker(self, nf_ctor):
        runtime = ReplicatedRuntime(nf_ctor, CFG, workers=2, lag=0)
        _, now = _establish(runtime, 8)
        # Refill the dead worker's RX queue, then kill before it serves.
        for i in range(12):
            runtime.inject(
                0,
                make_udp_packet(
                    "10.0.0.2", "8.8.8.8", 3_000 + i, 30_000 + i, device=0
                ),
                now + i,
            )
        queued_on_1 = runtime.steered[1] - 0  # includes the establish share
        runtime.kill_worker(1, at_us=now + 13)
        runtime.main_loop_burst(now + 14)
        (report,) = runtime.reports
        assert report.packets_lost_queue > 0
        assert report.packets_lost_queue <= queued_on_1
        assert (
            runtime.drop_causes()["fault_kill_lost"] == report.packets_lost_queue
        )

    def test_promotion_blackout_drops_at_the_wire(self, nf_ctor):
        runtime = ReplicatedRuntime(nf_ctor, CFG, workers=2, lag=0)
        ext_of, now = _establish(runtime, 24)
        dead_flows = [
            (marker, port)
            for marker, port in ext_of.items()
            if runtime.runtime.steering.owner_of_port(port) == 1
        ]
        assert dead_flows, "no flows landed on worker 1"
        marker, port = dead_flows[0]

        runtime.kill_worker(1, at_us=now + 1)
        now += 2
        runtime.main_loop_burst(now)
        (report,) = runtime.reports
        assert report.recovery_us > 0

        # Inside the blackout window: steered at the promoted slot, lost.
        assert not runtime.inject(1, _reply(marker, port), report.ready_at_us - 1)
        assert runtime.blackout_dropped == 1
        assert report.packets_lost_blackout == 1
        assert runtime.drop_causes()["failover_blackout_dropped"] == 1
        # At the deadline the slot serves again.
        assert runtime.inject(1, _reply(marker, port), report.ready_at_us)
        runtime.main_loop_burst(report.ready_at_us + 5)
        assert len(runtime.collect()) == 1

    def test_drain_replication_syncs_standbys(self, nf_ctor):
        runtime = ReplicatedRuntime(nf_ctor, CFG, workers=2, lag=16)
        _establish(runtime, 24)
        assert runtime.standby_flow_count() < runtime.flow_count()
        runtime.drain_replication()
        assert runtime.standby_flow_count() == runtime.flow_count()

    def test_promoted_worker_keeps_replicating(self, nf_ctor):
        # A second kill of the same slot after new flows were opened on
        # the promoted NF must again lose nothing at lag 0 — the fresh
        # NF re-attached to the delta sink.
        runtime = ReplicatedRuntime(nf_ctor, CFG, workers=2, lag=0)
        _, now = _establish(runtime, 12)
        runtime.kill_worker(1, at_us=now + 1)
        now += 2
        runtime.main_loop_burst(now)
        now = runtime.reports[0].ready_at_us + 10

        for i in range(12):
            runtime.inject(
                0,
                make_udp_packet(
                    "10.0.0.3", "8.8.8.8", 5_000 + i, 40_000 + i, device=0
                ),
                now + i,
            )
        now += 20
        runtime.main_loop_burst(now)
        runtime.collect()
        flows_before = runtime.flow_count()

        runtime.kill_worker(1, at_us=now + 1)
        now += 2
        runtime.main_loop_burst(now)
        assert len(runtime.reports) == 2
        assert runtime.reports[1].flows_lost == 0
        assert runtime.flow_count() == flows_before


class TestReplicatedRuntimeSurface:
    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ReplicatedRuntime(VigNat, CFG, workers=1, failover_fixed_us=-1)

    def test_metrics_cover_replication_and_failover(self):
        runtime = ReplicatedRuntime(VigNat, CFG, workers=2, lag=2)
        _, now = _establish(runtime, 8)
        runtime.kill_worker(1, at_us=now + 1)
        runtime.main_loop_burst(now + 2)
        snapshot = runtime.metrics_snapshot()
        names = {metric["name"] for metric in snapshot["metrics"]}
        assert {
            "replication_published_total",
            "replication_delivered_total",
            "replication_lost_total",
            "replication_in_flight",
            "standby_flows",
            "failover_total",
            "failover_blackout_dropped_total",
        } <= names

    def test_fastpath_survives_promotion(self):
        # The promoted NF is wrapped like its predecessor, and the
        # restored generation invalidates any pre-kill cache entry.
        runtime = ReplicatedRuntime(VigNat, CFG, workers=2, lag=0, fastpath=True)
        ext_of, now = _establish(runtime, 16)
        runtime.kill_worker(1, at_us=now + 1)
        now += 2
        runtime.main_loop_burst(now)
        (report,) = runtime.reports
        assert report.flows_lost == 0
        now = report.ready_at_us + 10
        for marker, ext_port in ext_of.items():
            runtime.inject(1, _reply(marker, ext_port), now)
        runtime.main_loop_burst(now + 5)
        assert len(runtime.collect()) == len(ext_of)

    def test_promotion_warms_the_microflow_cache(self):
        # A promoted standby must not serve its first packets cold:
        # both directions of every recovered flow are pre-installed in
        # the action cache at promotion.
        runtime = ReplicatedRuntime(VigNat, CFG, workers=2, lag=0, fastpath=True)
        _, now = _establish(runtime, 16)
        runtime.kill_worker(1, at_us=now + 1)
        runtime.main_loop_burst(now + 2)
        (report,) = runtime.reports
        assert report.flows_recovered > 0
        assert report.fastpath_warmed == 2 * report.flows_recovered
        assert report.to_dict()["fastpath_warmed"] == report.fastpath_warmed

    def test_no_cache_means_nothing_to_warm(self):
        runtime = ReplicatedRuntime(VigNat, CFG, workers=2, lag=0, fastpath=False)
        _, now = _establish(runtime, 16)
        runtime.kill_worker(1, at_us=now + 1)
        runtime.main_loop_burst(now + 2)
        (report,) = runtime.reports
        assert report.flows_recovered > 0
        assert report.fastpath_warmed == 0
