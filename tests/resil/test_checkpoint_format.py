"""The ``repro-ckpt/v1`` container must refuse every malformed input.

A checkpoint that decodes wrong is worse than one that fails: a restore
from corrupted bytes silently resurrects the wrong flow table. Every
framing violation — bad magic, truncation at any layer, trailing bytes,
CRC damage, non-JSON body, missing fields — must raise
:class:`CheckpointError` before any NF state is touched, and the
restore-time guards (NF kind, configuration, freshness) must refuse
checkpoints that parse fine but belong elsewhere.
"""

import json
import struct
import zlib

import pytest

from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.packets.builder import make_udp_packet
from repro.resil.checkpoint import MAGIC, Checkpoint, CheckpointError, restore, snapshot

CFG = NatConfig(max_flows=8, expiration_time=2_000_000, start_port=1000)


def _nat_with_flows(count: int = 3) -> VigNat:
    nat = VigNat(CFG)
    for i in range(count):
        nat.process(
            make_udp_packet("10.0.0.1", "8.8.8.8", 4_000 + i, 53, device=0),
            1_000 + i,
        )
    return nat


def _checkpoint() -> Checkpoint:
    return snapshot(_nat_with_flows(), now_us=5_000)


class TestWireFormat:
    def test_round_trips(self):
        ckpt = _checkpoint()
        again = Checkpoint.from_bytes(ckpt.to_bytes())
        assert again == ckpt

    def test_serialization_is_canonical(self):
        # Same state, same bytes — the format is a stable artifact.
        assert _checkpoint().to_bytes() == _checkpoint().to_bytes()

    def test_bad_magic(self):
        data = _checkpoint().to_bytes()
        with pytest.raises(CheckpointError, match="bad magic"):
            Checkpoint.from_bytes(b"not-a-ckpt/v9\n" + data[len(MAGIC) :])

    def test_wrong_version_line_is_bad_magic(self):
        data = _checkpoint().to_bytes()
        with pytest.raises(CheckpointError, match="bad magic"):
            Checkpoint.from_bytes(data.replace(b"/v1", b"/v2", 1))

    @pytest.mark.parametrize("keep", [0, 4, 7])
    def test_truncated_frame_header(self, keep):
        with pytest.raises(CheckpointError, match="frame header"):
            Checkpoint.from_bytes(MAGIC + b"\x00" * keep)

    def test_truncated_body(self):
        data = _checkpoint().to_bytes()
        with pytest.raises(CheckpointError, match="truncated"):
            Checkpoint.from_bytes(data[:-1])

    def test_trailing_bytes(self):
        data = _checkpoint().to_bytes()
        with pytest.raises(CheckpointError, match="trailing"):
            Checkpoint.from_bytes(data + b"\x00")

    def test_crc_catches_body_damage(self):
        data = bytearray(_checkpoint().to_bytes())
        data[-1] ^= 0xFF  # one flipped byte deep in the body
        with pytest.raises(CheckpointError, match="CRC"):
            Checkpoint.from_bytes(bytes(data))

    @staticmethod
    def _frame(body: bytes) -> bytes:
        return MAGIC + struct.pack(">II", zlib.crc32(body), len(body)) + body

    def test_body_must_be_json(self):
        with pytest.raises(CheckpointError, match="not valid JSON"):
            Checkpoint.from_bytes(self._frame(b"\xff\xfe not json"))

    @pytest.mark.parametrize("missing", ["nf", "taken_at_us", "config", "state"])
    def test_body_must_carry_every_field(self, missing):
        payload = {"nf": "x", "taken_at_us": 0, "config": {}, "state": {}}
        del payload[missing]
        body = json.dumps(payload).encode()
        with pytest.raises(CheckpointError, match=missing):
            Checkpoint.from_bytes(self._frame(body))


class TestRestoreGuards:
    def test_wrong_nf_kind_refused(self):
        ckpt = _checkpoint()  # a verified-nat checkpoint
        with pytest.raises(CheckpointError, match="verified-nat"):
            restore(UnverifiedNat(CFG), ckpt)

    def test_config_mismatch_refused_with_diff(self):
        ckpt = _checkpoint()
        other = NatConfig(max_flows=16, expiration_time=2_000_000, start_port=1000)
        with pytest.raises(CheckpointError, match="max_flows"):
            restore(VigNat(other), ckpt)

    def test_restore_needs_a_fresh_nf(self):
        ckpt = _checkpoint()
        used = _nat_with_flows(1)
        with pytest.raises(ValueError, match="freshly constructed"):
            restore(used, ckpt)

    def test_unverified_restore_needs_a_fresh_nf(self):
        nat = UnverifiedNat(CFG)
        nat.process(
            make_udp_packet("10.0.0.1", "8.8.8.8", 4_000, 53, device=0), 1_000
        )
        ckpt = snapshot(nat, now_us=2_000)
        with pytest.raises(ValueError, match="freshly constructed"):
            restore(nat, ckpt)

    def test_fastpath_wrapper_snapshots_inner_config(self):
        # snapshot() must see through the wrapper to the inner config,
        # so a wrapped checkpoint restores into a wrapped NF and back.
        wrapped = FastPathNat(VigNat(CFG))
        wrapped.process(
            make_udp_packet("10.0.0.1", "8.8.8.8", 4_000, 53, device=0), 1_000
        )
        ckpt = snapshot(wrapped, now_us=2_000)
        assert ckpt.nf == "verified-nat"
        assert ckpt.config["max_flows"] == CFG.max_flows
        fresh = FastPathNat(VigNat(CFG))
        restore(fresh, ckpt)
        assert fresh.flow_count() == 1

    def test_restored_generation_outruns_checkpoint(self):
        # Any microflow-cache entry learned before the snapshot must be
        # stale after restore — the generation strictly advances.
        nat = _nat_with_flows()
        ckpt = snapshot(nat, now_us=5_000)
        fresh = VigNat(CFG)
        restore(fresh, ckpt)
        assert fresh.checkpoint_state()["generation"] > ckpt.state["generation"]
