"""The seeded ``reorder`` fault: adjacent-packet swaps at the inject
choke point, with the empty-plan byte-identity regression the
differential sweeps rely on."""

import pytest

from repro.nat.config import NatConfig
from repro.nat.noop import NoopForwarder
from repro.nat.vignat import VigNat
from repro.net.app import RuntimeSpec, launch
from repro.net.nic import Port
from repro.packets.builder import make_udp_packet
from repro.resil.faults import FaultPlan

CFG = NatConfig(max_flows=64, expiration_time=60_000_000, start_port=1000)


def packets(n):
    return [
        make_udp_packet("10.0.0.1", "203.0.113.9", 1024 + i, 2000 + i)
        for i in range(n)
    ]


class TestSwapTail:
    def test_swaps_two_newest_payloads_keeping_timestamps(self):
        port = Port(0, rx_capacity=8)
        a, b, c = packets(3)
        port.deliver(a, 10)
        port.deliver(b, 20)
        port.deliver(c, 30)
        assert port.swap_tail()
        assert port.rx_pop() == (10, a)
        # Timestamps stay with their slots: arrival order on the ring
        # remains monotonic, only the payloads traded places.
        assert port.rx_pop() == (20, c)
        assert port.rx_pop() == (30, b)

    def test_noop_with_fewer_than_two_pending(self):
        port = Port(0, rx_capacity=8)
        assert not port.swap_tail()
        (only,) = packets(1)
        port.deliver(only, 10)
        assert not port.swap_tail()
        assert port.rx_pop() == (10, only)


class TestReorderPlan:
    def test_builder_validates_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan().reorder(probability=1.5)

    def test_fires_inside_window_and_notes_application(self):
        plan = FaultPlan(seed=3).reorder(start_us=100, end_us=200)
        assert not plan.reorder_fires(50)
        assert plan.reorder_fires(150)
        assert not plan.reorder_fires(250)
        assert plan.applied["reorder"] == 1

    def test_worker_scoping(self):
        plan = FaultPlan(seed=3).reorder(worker=1)
        assert not plan.reorder_fires(10, worker=0)
        assert plan.reorder_fires(10, worker=1)

    def test_seeded_probability_is_reproducible(self):
        def draws():
            plan = FaultPlan(seed=11).reorder(probability=0.5)
            return [plan.reorder_fires(t) for t in range(40)]

        first, second = draws(), draws()
        assert first == second
        assert any(first) and not all(first)


def run_nat(plan, count=6):
    runtime = launch(
        RuntimeSpec(
            nf_factory=lambda cfg: VigNat(cfg), config=CFG, fault_plan=plan
        )
    )
    for i, pkt in enumerate(packets(count)):
        runtime.inject(0, pkt, 1_000 + i)
    runtime.main_loop_burst(2_000)
    return [(pkt.to_bytes(), port) for port, _ts, pkt in runtime.collect()]


class TestReorderDataPath:
    def test_certain_reorder_swaps_adjacent_packets(self):
        baseline = run_nat(None)
        reordered = run_nat(FaultPlan(seed=5).reorder(probability=1.0))
        assert len(reordered) == len(baseline)
        # Same flows exit (identified by their untouched dst port), but
        # arrival order drives the NAT's port allocation, so reordering
        # visibly changes which external port each flow drew.
        def flows(outputs):
            return sorted(int.from_bytes(w[36:38], "big") for w, _ in outputs)

        assert flows(reordered) == flows(baseline)
        assert reordered != baseline

    def test_noop_forwarder_preserves_payload_set(self):
        runtime = launch(
            RuntimeSpec(
                nf_factory=lambda _cfg: NoopForwarder(),
                fault_plan=FaultPlan(seed=5).reorder(probability=1.0),
            )
        )
        sent = packets(4)
        for i, pkt in enumerate(sent):
            runtime.inject(0, pkt, 1_000 + i)
        runtime.main_loop_burst(2_000)
        got = [pkt.to_bytes() for _port, _ts, pkt in runtime.collect()]
        assert sorted(got) == sorted(p.to_bytes() for p in sent)
        assert got != [p.to_bytes() for p in sent]

    def test_empty_plan_is_byte_identical_to_no_plan(self):
        # The regression the satellite demands: attaching an empty
        # FaultPlan (fresh or fully cleared) must not perturb a single
        # byte relative to running with no plan at all.
        baseline = run_nat(None)
        assert run_nat(FaultPlan(seed=5)) == baseline
        cleared = FaultPlan(seed=5).reorder(probability=1.0).clear(kind="reorder")
        assert run_nat(cleared) == baseline
