"""The round-trip property: ``restore(snapshot(nat))`` ≡ ``nat``.

Hypothesis drives a random traffic prefix through a NAT, snapshots it
mid-run (through the full wire format — serialize, reparse, restore),
then replays an identical random suffix through the original and the
restored copy. Equivalence is observational and byte-exact: every
suffix packet must produce the same frames (same bytes, same device)
on both, and the final checkpoint states must match field for field
(modulo the restore's deliberate generation bump).

Runs with the microflow fast path both off and on — a restored NF must
be indistinguishable even when the original's cache is warm and the
copy's is cold.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.packets.builder import make_tcp_packet, make_udp_packet
from repro.resil.checkpoint import Checkpoint, restore, snapshot

CFG = NatConfig(max_flows=8, expiration_time=2_000_000, start_port=1000)

INTERNAL_IPS = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]
REMOTE_IP = "8.8.8.8"


def _steps():
    return st.lists(
        st.tuples(
            st.sampled_from(["in", "out"]),
            st.integers(0, 5),  # flow selector
            st.sampled_from(["udp", "udp0", "tcp"]),  # udp0 = checksum off
            st.integers(0, 2_500_000),  # µs increment, can cross expiry
        ),
        min_size=1,
        max_size=30,
    )


def _packet(direction, selector, kind):
    if direction == "out":
        src = INTERNAL_IPS[selector % len(INTERNAL_IPS)]
        sport = 1024 + selector
        if kind == "tcp":
            return make_tcp_packet(src, REMOTE_IP, sport, 80, device=0)
        packet = make_udp_packet(src, REMOTE_IP, sport, 53, device=0)
    else:
        dport = CFG.start_port + selector  # probes the allocation range
        if kind == "tcp":
            return make_tcp_packet(REMOTE_IP, CFG.external_ip, 80, dport, device=1)
        packet = make_udp_packet(REMOTE_IP, CFG.external_ip, 53, dport, device=1)
    if kind == "udp0":
        packet.l4.checksum = 0
    return packet


def _render(outputs):
    return [(p.device, p.wire_bytes()) for p in outputs]


def _final_state(nf, fastpath):
    state = nf.checkpoint_state()
    state.pop("generation")  # restore bumps it past the checkpoint's
    if fastpath:
        # Operation counters depend on cache warmth (a hit replays the
        # cached action without touching the inner NF's slow-path
        # counters), and the original's cache is warm where the restored
        # copy's is cold. The abstract flow state must still match.
        state.pop("counters")
    return state


def _check_roundtrip(nf_ctor, fastpath, steps, cut):
    def build():
        nf = nf_ctor(CFG)
        return FastPathNat(nf) if fastpath else nf

    original = build()
    cut = min(cut, len(steps))
    now = 0

    for direction, selector, kind, dt in steps[:cut]:
        now += dt
        original.process(_packet(direction, selector, kind), now)

    # Through the full wire format: bytes out, bytes in, restore.
    ckpt = Checkpoint.from_bytes(snapshot(original, now_us=now).to_bytes())
    restored = build()
    restore(restored, ckpt)
    assert restored.flow_count() == original.flow_count()

    for direction, selector, kind, dt in steps[cut:]:
        now += dt
        packet = _packet(direction, selector, kind)
        assert _render(restored.process(packet.clone(), now)) == _render(
            original.process(packet.clone(), now)
        ), f"restored NF diverged at t={now}"

    assert _final_state(restored, fastpath) == _final_state(original, fastpath)


@pytest.mark.parametrize("fastpath", [False, True], ids=["slowpath", "fastpath"])
class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(steps=_steps(), cut=st.integers(0, 30))
    def test_vignat(self, fastpath, steps, cut):
        _check_roundtrip(VigNat, fastpath, steps, cut)

    @settings(max_examples=50, deadline=None)
    @given(steps=_steps(), cut=st.integers(0, 30))
    def test_unverified(self, fastpath, steps, cut):
        _check_roundtrip(UnverifiedNat, fastpath, steps, cut)
