"""The process-mode supervisor: respawn + coordinated restore, opt-in.

Without ``supervise=True`` a dead worker surfaces as ``WorkerCrashed``
and recovery is the caller's problem (PR 7's contract). With it, the
runtime respawns the dead shard (fresh process, fresh rings), restores
the whole fleet to the last coordinated ``CheckpointSet`` — rolling
back exactly the traffic the checkpoint contract says is replayable —
and keeps serving. Restarts are counted in the merged metrics.
"""

import glob
import os
import signal

import pytest

from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.net.app import PROCESS, RuntimeSpec, launch
from repro.net.procrun import TRANSPORTS, WorkerCrashed
from repro.resil.faults import FaultPlan
from repro.packets.builder import make_udp_packet

CFG = NatConfig(max_flows=256, expiration_time=60_000_000, start_port=1000)


def spec(transport, **overrides):
    base = dict(
        nf_factory=VigNat,
        config=CFG,
        workers=2,
        execution=PROCESS,
        transport=transport,
        supervise=True,
        turn_timeout_s=5.0,
    )
    base.update(overrides)
    return RuntimeSpec(**base)


def feed(runtime, count, base_port, now):
    for i in range(count):
        runtime.inject(
            0,
            make_udp_packet(
                f"10.0.0.{(i % 200) + 1}", "8.8.8.8",
                base_port + i, 53, device=0,
            ),
            now + i,
        )
    return runtime.main_loop_burst(now + count, 32)


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestSupervisor:
    def test_respawn_restores_last_checkpoint(self, transport):
        rt = launch(spec(transport))
        try:
            feed(rt, 8, 1_024, 100)
            rt.collect()
            rt.checkpoint(500)
            flows_at_fence = rt.flow_count()
            feed(rt, 8, 2_048, 600)  # past the fence: will roll back
            rt.collect()

            os.kill(rt._procs[0].pid, signal.SIGKILL)
            rt._procs[0].join()
            assert rt.main_loop_burst(1_000, 32) == 0  # the recovery turn
            assert rt.supervisor_restarts == 1
            assert rt.flow_count() == flows_at_fence

            # The fleet serves on: new flows NAT normally after recovery.
            assert feed(rt, 8, 4_096, 2_000) == 8
            assert rt.flow_count() == flows_at_fence + 8
        finally:
            rt.stop()

    def test_construction_checkpoint_is_the_initial_baseline(self, transport):
        """A crash before any explicit checkpoint rolls back to empty."""
        rt = launch(spec(transport))
        try:
            feed(rt, 8, 1_024, 100)
            rt.collect()
            os.kill(rt._procs[1].pid, signal.SIGKILL)
            rt._procs[1].join()
            assert rt.main_loop_burst(500, 32) == 0
            assert rt.flow_count() == 0
            assert rt.supervisor_restarts == 1
        finally:
            rt.stop()

    def test_fault_plan_kill_is_recovered_not_raised(self, transport):
        plan = FaultPlan(seed=7).kill_worker(worker=1, at_us=600)
        rt = launch(spec(transport, fault_plan=plan))
        try:
            feed(rt, 8, 1_024, 100)
            rt.collect()
            rt.checkpoint(500)
            assert rt.main_loop_burst(700, 32) == 0  # kill fires + recovery
            assert rt.supervisor_restarts == 1
            # The kill window was cleared, so the respawned slot serves.
            assert feed(rt, 8, 2_048, 1_000) == 8
        finally:
            rt.stop()

    def test_restarts_ride_the_merged_metrics(self, transport):
        rt = launch(spec(transport))
        try:
            os.kill(rt._procs[0].pid, signal.SIGKILL)
            rt._procs[0].join()
            rt.main_loop_burst(100, 32)
            snapshot = rt.snapshot_metrics()
            (metric,) = (
                m
                for m in snapshot["metrics"]
                if m["name"] == "proc_supervisor_restarts_total"
            )
            (sample,) = metric["samples"]
            assert sample["value"] == 1
            assert sample["labels"]["worker"] == "parent"
            assert sample["labels"]["transport"] == transport
        finally:
            rt.stop()

    def test_unsupervised_crash_still_raises(self, transport):
        rt = launch(spec(transport, supervise=False))
        try:
            os.kill(rt._procs[0].pid, signal.SIGKILL)
            rt._procs[0].join()
            with pytest.raises(WorkerCrashed):
                rt.main_loop_burst(100, 32)
        finally:
            rt.stop()


def test_supervise_requires_process_execution():
    with pytest.raises(ValueError, match="supervise"):
        RuntimeSpec(nf_factory=VigNat, supervise=True)


def test_respawn_replaces_rings_without_leaks():
    """Recovery swaps in fresh segments and unlinks the dead worker's."""
    rt = launch(spec("shm"))
    old_names = [r.name for r in rt._all_rings]
    try:
        os.kill(rt._procs[0].pid, signal.SIGKILL)
        rt._procs[0].join()
        rt.main_loop_burst(100, 32)
        new_names = [r.name for r in rt._all_rings]
        assert len(new_names) == len(old_names)
        replaced = set(old_names) - set(new_names)
        assert len(replaced) == 2  # worker 0's inject + out rings
        for name in replaced:
            assert not glob.glob(f"/dev/shm/{name}")
    finally:
        rt.stop()
    for name in set(old_names) | set(new_names):
        assert not glob.glob(f"/dev/shm/{name}")
