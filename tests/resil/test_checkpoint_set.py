"""The ``repro-ckpt-set/v1`` container: a coordinated cut, all-or-nothing.

Same philosophy as the per-shard format tests: a checkpoint set that
decodes wrong must raise :class:`CheckpointError` at whichever layer the
damage sits — outer magic, manifest CRC, promised frame lengths, or an
inner frame — before any NF state is touched, and ``restore_all`` must
refuse a set whose shape does not match the fleet.
"""

import json
import struct
import zlib

import pytest

from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.packets.builder import make_udp_packet
from repro.resil.checkpoint import (
    SET_MAGIC,
    CheckpointError,
    CheckpointSet,
    restore_all,
    snapshot_all,
)

CFG = NatConfig(max_flows=16, expiration_time=60_000_000, start_port=1000)


def _fleet(workers: int = 2, flows_per_worker: int = 3):
    """N shard NFs, each with its own flows."""
    shards = CFG.partition(workers)
    nfs = [VigNat(shard) for shard in shards]
    for i, nf in enumerate(nfs):
        for j in range(flows_per_worker):
            nf.process(
                make_udp_packet(
                    0x0A000001 + i, "8.8.8.8", 2_000 + 50 * i + j, 53, device=0
                ),
                1_000,
            )
    return nfs


def _set(workers: int = 2) -> CheckpointSet:
    return snapshot_all(_fleet(workers), now_us=5_000)


class TestShape:
    def test_snapshot_all_one_frame_per_shard(self):
        checkpoint_set = _set(3)
        assert checkpoint_set.workers == 3
        assert checkpoint_set.taken_at_us == 5_000
        assert all(c.nf == "verified-nat" for c in checkpoint_set.checkpoints)

    def test_empty_set_refused(self):
        with pytest.raises(CheckpointError):
            CheckpointSet(taken_at_us=0, checkpoints=())


class TestWireFormat:
    def test_round_trips(self):
        original = _set()
        again = CheckpointSet.from_bytes(original.to_bytes())
        assert again.workers == original.workers
        assert again.taken_at_us == original.taken_at_us
        assert [c.state for c in again.checkpoints] == [
            c.state for c in original.checkpoints
        ]

    def test_serialization_is_canonical(self):
        assert _set().to_bytes() == _set().to_bytes()

    def test_bad_magic(self):
        with pytest.raises(CheckpointError, match="magic"):
            CheckpointSet.from_bytes(b"not-a-checkpoint-set" + b"\x00" * 40)

    def test_truncated_header(self):
        with pytest.raises(CheckpointError, match="header"):
            CheckpointSet.from_bytes(SET_MAGIC + b"\x00\x01")

    def test_truncated_manifest(self):
        payload = _set().to_bytes()
        cut = len(SET_MAGIC) + struct.calcsize(">II") + 4
        with pytest.raises(CheckpointError, match="manifest incomplete"):
            CheckpointSet.from_bytes(payload[:cut])

    def test_manifest_crc_catches_damage(self):
        payload = bytearray(_set().to_bytes())
        payload[len(SET_MAGIC) + struct.calcsize(">II") + 2] ^= 0xFF
        with pytest.raises(CheckpointError, match="CRC"):
            CheckpointSet.from_bytes(bytes(payload))

    def test_missing_frames_detected(self):
        payload = _set().to_bytes()
        with pytest.raises(CheckpointError, match="promises"):
            CheckpointSet.from_bytes(payload[:-10])

    def test_inner_frame_damage_detected(self):
        """Damage inside a shard frame is the inner format's CRC to
        catch — the set must surface it, not half-restore."""
        payload = bytearray(_set().to_bytes())
        payload[-1] ^= 0xFF
        with pytest.raises(CheckpointError):
            CheckpointSet.from_bytes(bytes(payload))

    def test_manifest_nf_mismatch_detected(self):
        """A manifest whose NF lineup disagrees with its frames is
        rejected even when every CRC is intact."""
        original = _set()
        frames = [c.to_bytes() for c in original.checkpoints]
        manifest = json.dumps(
            {
                "taken_at_us": 5_000,
                "workers": 2,
                "nfs": ["verified-nat", "unverified-nat"],  # a lie
                "frame_lengths": [len(f) for f in frames],
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        forged = (
            SET_MAGIC
            + struct.pack(">II", zlib.crc32(manifest), len(manifest))
            + manifest
            + b"".join(frames)
        )
        with pytest.raises(CheckpointError, match="manifest says"):
            CheckpointSet.from_bytes(forged)


class TestRestoreAll:
    def test_round_trip_restores_every_shard(self):
        nfs = _fleet(2)
        checkpoint_set = snapshot_all(nfs, now_us=5_000)
        fresh = [VigNat(shard) for shard in CFG.partition(2)]
        assert all(nf.flow_count() == 0 for nf in fresh)
        restore_all(fresh, checkpoint_set)
        assert [nf.flow_count() for nf in fresh] == [
            nf.flow_count() for nf in nfs
        ]

    def test_width_mismatch_refused(self):
        checkpoint_set = _set(2)
        fresh = [VigNat(shard) for shard in CFG.partition(3)]
        with pytest.raises(CheckpointError):
            restore_all(fresh, checkpoint_set)

    def test_shard_config_cross_check(self):
        """Frame i only restores into worker i: feeding the set to a
        fleet partitioned differently trips the per-frame config guard."""
        checkpoint_set = _set(2)
        swapped = [
            VigNat(shard) for shard in reversed(CFG.partition(2))
        ]
        with pytest.raises(CheckpointError):
            restore_all(swapped, checkpoint_set)
