"""Restoring a checkpoint onto a host whose clock reads *earlier*.

A snapshot taken at T carries flow timestamps up to T. Restored on a
machine whose monotonic clock reads T' < T (a rebooted standby, a VM
migration), the naive failure modes are:

- **mass expiry**: computing the expiry threshold from T' as if the
  flows were ``T - T'`` microseconds stale kills every flow at once;
- **time regression**: feeding T' into the double chain after restoring
  cells touched at T trips :class:`TimeRegression` and crashes the NF;
- **immortalization**: clamping so hard the clock never advances again,
  so no flow ever expires.

The restore path floors the NF clock at the checkpoint's, so the clamp
absorbs T' (counted in ``clock_clamped``), every flow keeps translating,
and once real time passes T again normal expiry resumes.
"""

import pytest

from repro.nat.config import NatConfig
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.packets.builder import make_udp_packet
from repro.resil.checkpoint import snapshot, restore

EXPIRY_US = 2_000_000
CFG = NatConfig(max_flows=8, expiration_time=EXPIRY_US, start_port=1000)

SNAPSHOT_AT = 10_000_000  # T
EARLIER = 1_000  # T' << T
FLOWS = 4


def _restored_nat(nf_ctor):
    nat = nf_ctor(CFG)
    ext_ports = {}
    for i in range(FLOWS):
        outputs = nat.process(
            make_udp_packet("10.0.0.1", "8.8.8.8", 4_000 + i, 53, device=0),
            SNAPSHOT_AT - 100 + i,
        )
        ext_ports[i] = outputs[0].l4.src_port
    fresh = nf_ctor(CFG)
    restore(fresh, snapshot(nat, now_us=SNAPSHOT_AT))
    return fresh, ext_ports


def _reply(ext_port):
    return make_udp_packet("8.8.8.8", CFG.external_ip, 53, ext_port, device=1)


@pytest.mark.parametrize("nf_ctor", [VigNat, UnverifiedNat])
class TestRestoreAtEarlierTime:
    def test_no_mass_expiry_no_crash(self, nf_ctor):
        nat, ext_ports = _restored_nat(nf_ctor)
        # Traffic at T' must neither crash (TimeRegression) nor observe
        # an empty table: every restored flow still translates.
        for i in range(FLOWS):
            outputs = nat.process(_reply(ext_ports[i]), EARLIER + i)
            assert outputs, f"flow {i} mass-expired on restore at T' < T"
        assert nat.flow_count() == FLOWS

    def test_flows_are_not_immortal(self, nf_ctor):
        nat, _ = _restored_nat(nf_ctor)
        # Early traffic clamps; once the clock passes T + expiry the
        # restored flows age out normally.
        nat.process(
            make_udp_packet("10.0.0.9", "8.8.8.8", 9_999, 53, device=0), EARLIER
        )
        assert nat.flow_count() == FLOWS + 1
        nat.process(
            make_udp_packet("10.0.0.9", "8.8.8.8", 9_998, 53, device=0),
            SNAPSHOT_AT + EXPIRY_US + 1,
        )
        # Everything touched at/behind the clamp has expired; only the
        # newest flow survives.
        assert nat.flow_count() == 1


class TestClampAccounting:
    def test_vignat_counts_the_clamp(self):
        nat, ext_ports = _restored_nat(VigNat)
        before = nat.op_counters()["clock_clamped"]
        nat.process(_reply(ext_ports[0]), EARLIER)
        assert nat.op_counters()["clock_clamped"] == before + 1

    def test_restored_clock_floors_at_newest_flow(self):
        # Even a checkpoint whose recorded clock lags its newest flow
        # touch (possible when the snapshot raced a touch) restores a
        # clock that libVig's monotonicity contract accepts.
        nat = VigNat(CFG)
        nat.process(
            make_udp_packet("10.0.0.1", "8.8.8.8", 4_000, 53, device=0),
            SNAPSHOT_AT,
        )
        ckpt = snapshot(nat, now_us=SNAPSHOT_AT)
        ckpt.state["last_now_us"] = 0  # adversarially stale clock field
        fresh = VigNat(CFG)
        restore(fresh, ckpt)
        # Processing at any time must not trip TimeRegression.
        fresh.process(
            make_udp_packet("10.0.0.2", "8.8.8.8", 4_001, 53, device=0), EARLIER
        )
        assert fresh.flow_count() == 2
