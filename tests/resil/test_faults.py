"""Fault-plan semantics, unit and wired into the sharded data path.

The unit half pins the :class:`FaultPlan` contract (windows, worker
scoping, builders, clear, verdicts). The integration half injects each
fault kind into a real :class:`ShardedRuntime` and asserts the data
path reacts at the documented choke point — and that attaching *no*
plan leaves the path byte-identical to an empty one (the no-fault
identity the differential sweeps rely on).
"""

import pytest

from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.net.dpdk import ShardedRuntime
from repro.packets.builder import make_udp_packet
from repro.resil.faults import Fault, FaultPlan

CFG = NatConfig(max_flows=64, expiration_time=60_000_000, start_port=1000)


class TestFaultValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("cosmic-ray")

    def test_window_ends_before_start(self):
        with pytest.raises(ValueError, match="ends before"):
            Fault("link-drop", start_us=100, end_us=50)

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.5])
    def test_probability_out_of_range(self, p):
        with pytest.raises(ValueError, match="probability"):
            Fault("link-drop", probability=p)

    def test_window_is_half_open(self):
        fault = Fault("link-drop", start_us=100, end_us=200)
        assert not fault.active_at(99)
        assert fault.active_at(100)
        assert fault.active_at(199)
        assert not fault.active_at(200)

    def test_worker_scoping(self):
        fault = Fault("worker-kill", start_us=0, worker=1)
        assert fault.active_at(10, worker=1)
        assert not fault.active_at(10, worker=0)
        # Unscoped consultation sites see every fault.
        assert fault.active_at(10, worker=None)

    def test_open_ended_window(self):
        assert Fault("partition", start_us=5).active_at(10**9)


class TestFaultPlan:
    def test_builders_chain(self):
        plan = (
            FaultPlan(seed=7)
            .kill_worker(worker=1, at_us=5_000)
            .link_drop(start_us=0, end_us=2_000, probability=0.5)
            .skew_clock(magnitude_us=-500, worker=0)
        )
        assert [f.kind for f in plan.faults] == [
            "worker-kill",
            "link-drop",
            "clock-skew",
        ]
        assert not plan.empty

    def test_clear_filters_by_kind_and_worker(self):
        plan = (
            FaultPlan()
            .kill_worker(worker=0, at_us=0)
            .kill_worker(worker=1, at_us=0)
            .hang_worker(worker=1, start_us=0)
        )
        plan.clear(kind="worker-kill", worker=1)
        assert [(f.kind, f.worker) for f in plan.faults] == [
            ("worker-kill", 0),
            ("worker-hang", 1),
        ]
        plan.clear()  # no filters: retire everything
        assert plan.empty

    def test_link_verdict_drop_window(self):
        plan = FaultPlan().link_drop(start_us=100, end_us=200)
        assert plan.link_verdict(150) == ("drop", 0)
        assert plan.link_verdict(250) == ("deliver", 0)
        assert plan.applied["link-drop"] == 1

    def test_link_verdict_delay_accumulates(self):
        plan = FaultPlan().link_delay(30).link_delay(12)
        assert plan.link_verdict(0) == ("deliver", 42)

    def test_probabilistic_drop_is_seeded(self):
        outcomes = []
        for _ in range(2):
            plan = FaultPlan(seed=99).link_drop(probability=0.5)
            outcomes.append([plan.link_verdict(t)[0] for t in range(40)])
        assert outcomes[0] == outcomes[1], "same seed, same fault sequence"
        assert set(outcomes[0]) == {"drop", "deliver"}

    def test_skew_and_seizure_sum_per_worker(self):
        plan = (
            FaultPlan()
            .skew_clock(magnitude_us=-300, worker=0)
            .skew_clock(magnitude_us=100)  # every worker
            .exhaust_pool(buffers=5, worker=1)
        )
        assert plan.clock_skew_us(0, worker=0) == -200
        assert plan.clock_skew_us(0, worker=1) == 100
        assert plan.pool_seizure(0, worker=1) == 5
        assert plan.pool_seizure(0, worker=0) == 0

    def test_corrupt_packet_damages_l4_checksum_only(self):
        packet = make_udp_packet("10.0.0.1", "8.8.8.8", 4_000, 53, device=0)
        mangled = FaultPlan.corrupt_packet(packet)
        assert mangled.l4.checksum == packet.l4.checksum ^ 0x5555
        assert mangled.ipv4.checksum == packet.ipv4.checksum
        assert packet.l4.checksum != mangled.l4.checksum  # original untouched


def _runtime(plan, workers=2, **kw):
    return ShardedRuntime(VigNat, CFG, workers, fault_plan=plan, **kw)


def _flood(runtime, count, now=1_000, device=0):
    delivered = 0
    for i in range(count):
        delivered += runtime.inject(
            0,
            make_udp_packet("10.0.0.1", "8.8.8.8", 2_000 + i, 53, device=device),
            now + i,
        )
    return delivered


class TestShardedRuntimeUnderFaults:
    def test_link_drop_destroys_packets_on_the_wire(self):
        plan = FaultPlan().link_drop(start_us=0, end_us=1_050)
        runtime = _runtime(plan)
        _flood(runtime, 100)  # timestamps 1_000..1_099: half in window
        runtime.main_loop_burst(2_000)
        assert runtime.fault_wire_dropped == 50
        assert len(runtime.collect()) == 50
        assert runtime.drop_causes()["fault_wire_dropped"] == 50

    def test_link_corrupt_counts_and_still_delivers(self):
        plan = FaultPlan().link_corrupt(start_us=0)
        runtime = _runtime(plan)
        _flood(runtime, 10)
        runtime.main_loop_burst(2_000)
        assert runtime.fault_wire_corrupted == 10
        # Corruption damages checksums, not deliverability: the NAT
        # still forwards (it does not verify L4 checksums, as VigNAT's
        # DPDK path does not).
        assert len(runtime.collect()) == 10

    def test_kill_flushes_and_stops_the_worker(self):
        plan = FaultPlan()
        runtime = _runtime(plan)
        _flood(runtime, 40)
        steered = list(runtime.steered)
        plan.kill_worker(worker=1, at_us=2_000)
        runtime.main_loop_burst(2_000)
        # Worker 1's queue died with it; worker 0 served its share.
        assert runtime.fault_kill_lost == steered[1]
        assert len(runtime.collect()) == steered[0]

    def test_hang_preserves_the_queue(self):
        plan = FaultPlan().hang_worker(worker=1, start_us=0, end_us=3_000)
        runtime = _runtime(plan)
        _flood(runtime, 40)
        steered = list(runtime.steered)
        runtime.main_loop_burst(2_000)  # worker 1 hung: only worker 0 serves
        assert len(runtime.collect()) == steered[0]
        runtime.main_loop_burst(3_000)  # window over: the queue survived
        assert len(runtime.collect()) == steered[1]

    def test_negative_clock_skew_drives_the_clamp(self):
        plan = FaultPlan().skew_clock(
            magnitude_us=-5_000, worker=0, start_us=10_000, end_us=11_000
        )
        runtime = _runtime(plan, workers=1)
        _flood(runtime, 4, now=9_000)
        runtime.main_loop_burst(9_500)  # establishes _last_now = 9_500
        _flood(runtime, 4, now=10_000)
        runtime.main_loop_burst(10_500)  # NF sees 5_500: clamped, no crash
        clamped = runtime.per_worker_counters()[0]["clock_clamped"]
        assert clamped > 0
        assert len(runtime.collect()) == 8  # nothing lost to the skew

    def test_pool_seizure_starves_rx(self):
        # A seized pool cannot hand out mbufs: packets stay queued on
        # the RX ring (counted as rx_nombuf, like the NIC counter)
        # rather than being processed — or lost.
        plan = FaultPlan().exhaust_pool(buffers=8, start_us=0)
        runtime = _runtime(plan, workers=1, pool_size=8, rx_capacity=64)
        runtime.main_loop_burst(500)  # seizure applied on the turn
        _flood(runtime, 4)
        assert runtime.main_loop_burst(1_200) == 0
        assert runtime.collect() == []
        assert runtime.drop_causes()["rx_no_mbuf"] > 0

    def test_seizure_releases_after_window(self):
        plan = FaultPlan().exhaust_pool(buffers=8, start_us=0, end_us=1_000)
        runtime = _runtime(plan, workers=1, pool_size=8, rx_capacity=64)
        runtime.main_loop_burst(500)
        _flood(runtime, 4)
        assert runtime.main_loop_burst(600) == 0  # starved inside the window
        # Window over: the buffers return and the queued packets — which
        # survived the starvation on the ring — all get served.
        assert runtime.main_loop_burst(1_000) == 4
        assert len(runtime.collect()) == 4

    def test_empty_plan_is_byte_identical_to_no_plan(self):
        with_plan = _runtime(FaultPlan())
        without = ShardedRuntime(VigNat, CFG, 2)
        _flood(with_plan, 30)
        _flood(without, 30)
        with_plan.main_loop_burst(2_000)
        without.main_loop_burst(2_000)
        rendered = [
            [(port, t, p.device, p.wire_bytes()) for port, t, p in rt.collect()]
            for rt in (with_plan, without)
        ]
        assert rendered[0] == rendered[1]
