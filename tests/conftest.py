"""Shared fixtures for the test-suite."""

import pytest

from repro.libvig.contracts import disable_contracts, enable_contracts


@pytest.fixture
def contracts():
    """Enable runtime contract checking for the duration of a test."""
    enable_contracts()
    yield
    disable_contracts()
