"""A long deterministic soak: all NATs against the spec on one stream.

Beyond the per-property hypothesis tests, this runs a single seeded
20,000-packet mixed workload (bidirectional, expiry-crossing gaps,
malformed frames, table pressure) through VigNat with the executable
RFC 3022 spec in lock-step, and sanity-checks the baselines on the same
stream. One run takes a few seconds; it has caught integration bugs the
small generators missed.
"""

import random

from repro.nat.config import NatConfig
from repro.nat.netfilter import NetfilterNat
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.packets.builder import make_tcp_packet, make_udp_packet
from repro.packets.headers import EthernetHeader, Packet
from repro.spec.rfc3022 import NatSpec, spec_packet_of

CFG = NatConfig(max_flows=32, expiration_time=500_000, start_port=1000)

INTERNAL_HOSTS = [0x0A000001 + i for i in range(6)]
REMOTES = [0x08080808, 0xC6336401, 0xCB007101]


def _generate(seed: int, count: int):
    rng = random.Random(seed)
    now = 0
    known_ext_ports = []
    for _ in range(count):
        now += rng.choice((7, 193, 1_009, 40_007, 260_003))
        kind = rng.random()
        if kind < 0.02:
            yield now, Packet(eth=EthernetHeader(ethertype=0x0806), device=0), None
            continue
        maker = make_tcp_packet if rng.random() < 0.5 else make_udp_packet
        if kind < 0.62:
            packet = maker(
                rng.choice(INTERNAL_HOSTS),
                rng.choice(REMOTES),
                4_000 + rng.randrange(40),
                rng.choice((53, 80, 443)),
                device=0,
            )
        else:
            # Inbound: half aimed at recently used external ports.
            if known_ext_ports and rng.random() < 0.5:
                port = rng.choice(known_ext_ports)
            else:
                port = CFG.start_port + rng.randrange(CFG.max_flows)
            packet = maker(
                rng.choice(REMOTES), CFG.external_ip,
                rng.choice((53, 80, 443)), port, device=1,
            )
        yield now, packet, known_ext_ports


class TestSoak:
    def test_vignat_tracks_spec_for_20k_packets(self):
        nat = VigNat(CFG)
        chosen = {}
        spec = NatSpec(
            external_ip=CFG.external_ip,
            capacity=CFG.max_flows,
            expiration_time=CFG.expiration_time,
            port_oracle=lambda state, packet: chosen["port"],
            start_port=CFG.start_port,
        )
        state = spec.initial_state()
        forwarded = dropped = 0
        for now, packet, known_ports in _generate(seed=2017, count=20_000):
            outputs = nat.process(packet.clone(), now)
            if not packet.is_tcpudp_ipv4():
                assert outputs == []
                continue
            if outputs and packet.device == 0:
                chosen["port"] = outputs[0].l4.src_port
                if known_ports is not None:
                    known_ports.append(outputs[0].l4.src_port)
                    del known_ports[:-8]
            verdict = spec.step(state, spec_packet_of(packet, 0), now)
            state = verdict.state
            assert (len(outputs) == 1) == (verdict.sent is not None), (
                f"divergence at t={now}, case={verdict.case}"
            )
            if verdict.sent is not None:
                forwarded += 1
                out = outputs[0]
                assert out.ipv4.src_ip == verdict.sent.src_ip
                assert out.l4.src_port == verdict.sent.src_port
                assert out.ipv4.dst_ip == verdict.sent.dst_ip
                assert out.l4.dst_port == verdict.sent.dst_port
            else:
                dropped += 1
            assert nat.flow_count() == state.size()
        # The stream must actually exercise both outcomes heavily.
        assert forwarded > 5_000
        assert dropped > 1_000

    def test_baselines_survive_the_same_stream(self):
        """No crashes/leaks in the baselines on conforming traffic mix."""
        for nf in (UnverifiedNat(CFG), NetfilterNat(CFG)):
            forwarded = 0
            for now, packet, _ in _generate(seed=99, count=5_000):
                forwarded += len(nf.process(packet.clone(), now))
            assert forwarded > 1_000
            assert nf.flow_count() <= CFG.max_flows
