"""End-to-end integration: NFs driven through the DPDK runtime, and the
full verify-then-run story of the paper.
"""

from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.net.dpdk import DpdkRuntime
from repro.packets.addresses import ip_to_int
from repro.packets.builder import make_tcp_packet, make_udp_packet
from repro.packets.headers import Packet


class DpdkNatApp:
    """A DPDK main-loop wrapper: burst in, NAT, burst out."""

    def __init__(self, nat: VigNat, runtime: DpdkRuntime) -> None:
        self.nat = nat
        self.runtime = runtime

    def iteration(self, now_us: int, burst: int = 32) -> None:
        for port_id in (0, 1):
            for mbuf in self.runtime.rx_burst(port_id, burst):
                outputs = self.nat.process(mbuf.packet, now_us)
                if outputs:
                    out = outputs[0]
                    mbuf.packet = out
                    self.runtime.tx_burst(out.device, [mbuf], now_us)
                else:
                    self.runtime.free(mbuf)  # drop without leaking


class TestDpdkIntegration:
    def setup_method(self):
        self.cfg = NatConfig(max_flows=64)
        self.runtime = DpdkRuntime(port_count=2)
        self.app = DpdkNatApp(VigNat(self.cfg), self.runtime)

    def test_full_conversation_through_wire_format(self):
        """Client -> NAT -> server -> NAT -> client, as raw frames."""
        client_syn = make_tcp_packet("10.0.0.5", "93.184.216.34", 43210, 80, device=0)
        self.runtime.inject(0, Packet.from_bytes(client_syn.to_bytes(), device=0), 0)
        self.app.iteration(now_us=10)
        (out_port, _ts, translated) = self.runtime.collect()[0]
        assert out_port == 1
        wire = translated.to_bytes()
        seen_by_server = Packet.from_bytes(wire, device=1)
        assert seen_by_server.ipv4.src_ip == self.cfg.external_ip
        assert seen_by_server.ipv4.header_checksum_valid()
        assert seen_by_server.l4_checksum_valid()

        server_reply = make_tcp_packet(
            "93.184.216.34",
            self.cfg.external_ip,
            80,
            seen_by_server.l4.src_port,
            device=1,
        )
        self.runtime.inject(1, Packet.from_bytes(server_reply.to_bytes(), device=1), 20)
        self.app.iteration(now_us=30)
        (back_port, _ts, back) = self.runtime.collect()[0]
        assert back_port == 0
        assert back.ipv4.dst_ip == ip_to_int("10.0.0.5")
        assert back.l4.dst_port == 43210
        assert back.l4_checksum_valid()

    def test_no_mbuf_leaks_across_mixed_traffic(self):
        """Drops must free their buffers (the leak Vigor caught)."""
        for i in range(10):
            self.runtime.inject(0, make_udp_packet("10.0.0.1", "8.8.8.8", 1000 + i, 53, device=0), i)
        # Unsolicited external traffic: all dropped by the NAT.
        for i in range(10):
            self.runtime.inject(1, make_udp_packet("8.8.8.8", self.cfg.external_ip, 53, 60_000 + i, device=1), i)
        self.app.iteration(now_us=100)
        assert self.runtime.pool.in_flight == 0

    def test_sustained_traffic_with_expiry(self):
        now = 0
        for round_no in range(5):
            now += self.cfg.expiration_time // 2
            for i in range(32):
                self.runtime.inject(
                    0,
                    make_udp_packet("10.0.0.9", "8.8.8.8", 2000 + i, 53, device=0),
                    now,
                )
            self.app.iteration(now_us=now)
        assert self.app.nat.flow_count() == 32
        assert self.runtime.pool.in_flight == 0


class TestVerifyThenRun:
    """The paper's story: the code that verifies is the code that runs."""

    def test_verified_logic_is_the_deployed_logic(self):
        from repro.nat.core_logic import nat_loop_iteration
        from repro.nat.vignat import VigNat as _VigNat
        import inspect

        # The concrete NAT's process() delegates to the shared function...
        source = inspect.getsource(_VigNat.process)
        assert "nat_loop_iteration" in source
        # ...and the symbolic harness explores the same function object.
        from repro.verif import nf_env

        harness_source = inspect.getsource(nf_env.vignat_symbolic_body)
        assert "nat_loop_iteration" in harness_source

    def test_verify_then_forward(self):
        from repro.eval.verification_stats import collect

        stats = collect()
        assert stats.verified
        nat = VigNat(NatConfig(max_flows=16))
        packet = make_udp_packet("10.0.0.5", "8.8.8.8", 4000, 53, device=0)
        assert nat.process(packet, 1_000)
