"""Every example script must run clean (they are the public quickstarts)."""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/discard_protocol.py",
    "examples/crash_the_unverified_nat.py",
    "examples/verified_firewall.py",
    "examples/three_verified_nfs.py",
    "examples/verify_nat.py",
    "examples/nat_behavior_lab.py",
    "examples/replay_pcap.py",
    "examples/find_the_bug.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(script, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
    assert "FAILED" not in out


def test_performance_comparison_importable():
    """The heavy example is at least importable and wired correctly."""
    sys.path.insert(0, "examples")
    try:
        import performance_comparison  # noqa: F401
    finally:
        sys.path.pop(0)
