"""Differential proof: process workers are byte-identical to the oracle.

The process-per-shard runtime's correctness argument is not a port of
the NAT proof — it is a reduction to it. The deterministic
:class:`~repro.net.dpdk.ShardedRuntime` is the verification oracle;
:class:`~repro.net.procrun.ProcessShardedRuntime` claims to run the
*same* per-shard data path on the *same* steered sub-schedules, just on
real cores. If that claim holds, every worker process must emit exactly
the TX records (port, device, timestamp, wire bytes) the oracle's
same-numbered worker emits, and the merged counters must match — on
every NF × fastpath × worker-count cell, for forward traffic and for
the steered return path — over *both* payload transports, because the
shared-memory rings claim to be a pure mechanism swap.

The Hypothesis property extends the claim across restarts: a
coordinated checkpoint taken mid-schedule, restored into a *fresh*
process fleet, must replay the remaining schedule byte-identically to
the fleet that never restarted — on either transport.

The ring-mechanics tests force the shm corners the grid's geometry
never reaches: spans wrapping the ring edge, ring-full backpressure
(tiny rings), and a worker SIGKILLed mid-schedule.
"""

import glob
import os
import signal

import pytest
from hypothesis import given, settings, strategies as st

from repro.nat.cgnat import CgnatConfig, DetNat
from repro.nat.config import NatConfig
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.net.app import PROCESS, THREADED_DETERMINISTIC, RuntimeSpec, launch
from repro.net.procrun import TRANSPORTS, WorkerCrashed
from repro.packets.builder import make_udp_packet

WORKER_COUNTS = (1, 2, 4)

#: (name, factory, config, supports_fastpath)
NFS = (
    ("verified-nat", VigNat, None, True),
    ("unverified-nat", UnverifiedNat, None, True),
    ("det-nat", DetNat, "cgnat", False),
)

GRID = [
    pytest.param(name, factory, cfg_kind, fastpath, workers, transport,
                 id=f"{name}-fp-{fastpath}-w{workers}-{transport}")
    for name, factory, cfg_kind, supports_fp in NFS
    for fastpath in (("off", "cache", "compiled") if supports_fp else ("off",))
    for workers in WORKER_COUNTS
    for transport in TRANSPORTS
]


def make_config(kind):
    if kind == "cgnat":
        return CgnatConfig(
            max_flows=64,
            expiration_time=60_000_000,
            start_port=1000,
            subscriber_count=64,
            internal_port_base=1_024,
        )
    return NatConfig(
        max_flows=64, expiration_time=60_000_000, start_port=1000
    )


def outbound_events(count, cfg, start_us=1_000):
    """One outbound packet per flow, all translatable by every NF.

    DetNat only translates its configured subscriber/port domain, so
    the flows walk that domain — which the stateful NATs accept too.
    """
    ppn = getattr(cfg, "ports_per_subscriber", None)
    events = []
    now = start_us
    for i in range(count):
        if ppn:
            subscriber, offset = divmod(i % cfg.max_flows, ppn)
            src_ip = cfg.internal_base + subscriber
            src_port = cfg.internal_port_base + offset
        else:
            src_ip = 0x0A000001 + (i % 48)
            src_port = 1_024 + (i % 48)
        events.append(
            (
                make_udp_packet(
                    src_ip, "8.8.8.8", src_port, 20_000 + (i % 7), device=0
                ),
                now,
            )
        )
        now += 5
    return events, now


def drive(runtime, events, burst=8, final_now=None):
    pending = 0
    now = 0
    for packet, now in events:
        runtime.inject(packet.device, packet.clone(), now)
        pending += 1
        if pending >= burst:
            runtime.main_loop_burst(now, burst)
            pending = 0
    final = final_now if final_now is not None else now + 1
    runtime.main_loop_burst(final, burst)
    runtime.main_loop_burst(final + 1, burst)


def tx_of_oracle(runtime):
    return [
        [
            (port, packet.device, ts, packet.wire_bytes())
            for port, ts, packet in worker_records
        ]
        for worker_records in runtime.collect_by_worker()
    ]


def launch_pair(factory, cfg_kind, fastpath, workers, transport="shm"):
    def build(execution):
        return launch(
            RuntimeSpec(
                nf_factory=factory,
                config=make_config(cfg_kind),
                workers=workers,
                execution=execution,
                fastpath=fastpath,
                transport=transport,
            )
        )

    return build(THREADED_DETERMINISTIC), build(PROCESS)


@pytest.mark.parametrize("name,factory,cfg_kind,fastpath,workers,transport", GRID)
def test_byte_identity_on_grid(name, factory, cfg_kind, fastpath, workers, transport):
    """Forward + return traffic, every cell: same bytes, same counters."""
    oracle, proc = launch_pair(factory, cfg_kind, fastpath, workers, transport)
    try:
        events, now = outbound_events(96, make_config(cfg_kind))
        drive(oracle, events)
        drive(proc, events)

        oracle_fwd = tx_of_oracle(oracle)
        proc_fwd = proc.collect_raw_by_worker()
        assert proc_fwd == oracle_fwd, f"{name}: forward TX diverged"
        assert any(records for records in oracle_fwd), "no traffic flowed"

        # Return path: replies to every translated port, steered by
        # external-port ownership — the sharding-sensitive direction.
        ext_ip = oracle.config.external_ip
        replies = []
        reply_now = now + 100
        for worker_records in oracle_fwd:
            for _, _, _, wire in worker_records:
                from repro.packets.headers import Packet

                out = Packet.from_bytes(wire, device=1)
                if out.ipv4.src_ip != ext_ip:
                    continue
                replies.append(
                    (
                        make_udp_packet(
                            "8.8.8.8",
                            ext_ip,
                            out.l4.dst_port,
                            out.l4.src_port,
                            device=1,
                        ),
                        reply_now,
                    )
                )
                reply_now += 5
        assert replies, f"{name}: no translated output to reply to"
        drive(oracle, replies)
        drive(proc, replies)
        assert proc.collect_raw_by_worker() == tx_of_oracle(oracle), (
            f"{name}: return-path TX diverged"
        )

        assert proc.op_counters() == oracle.op_counters()
        assert proc.drop_causes() == oracle.drop_causes()
        assert proc.flow_count() == oracle.flow_count()
        assert proc.steered == oracle.steered
    finally:
        oracle.stop()
        proc.stop()


flows = st.lists(
    st.tuples(
        st.integers(min_value=0x0A000001, max_value=0x0A00003F),
        st.integers(min_value=1_024, max_value=60_000),
    ),
    min_size=4,
    max_size=24,
    unique=True,
)


@settings(max_examples=12, deadline=None)
@given(flows=flows, split=st.integers(min_value=1, max_value=23),
       workers=st.sampled_from((1, 2)),
       transport=st.sampled_from(TRANSPORTS))
def test_checkpoint_restores_into_byte_identical_replay(
    flows, split, workers, transport
):
    """Coordinated checkpoint = a cut you can restart from, losslessly.

    Drive a prefix, checkpoint, drive the suffix and record its TX;
    then restore the checkpoint into a fresh process fleet and drive
    the same suffix: the restarted fleet must emit the same bytes.
    Transport is part of the search space: the checkpoint fence claims
    to cover the shm rings (workers drain before acking) exactly as it
    covers the pipe.
    """
    split = min(split, len(flows) - 1)
    events = []
    now = 1_000
    for src_ip, src_port in flows:
        events.append(
            (
                make_udp_packet(src_ip, "8.8.8.8", src_port, 53, device=0),
                now,
            )
        )
        now += 5
    prefix, suffix = events[:split], events[split:]

    def build():
        return launch(
            RuntimeSpec(
                nf_factory=VigNat,
                config=NatConfig(
                    max_flows=64,
                    expiration_time=60_000_000,
                    start_port=1000,
                ),
                workers=workers,
                execution=PROCESS,
                transport=transport,
            )
        )

    first = build()
    try:
        drive(first, prefix)
        first.collect_raw_by_worker()  # discard prefix TX
        checkpoint_set = first.checkpoint(now_us=now)
        drive(first, suffix, final_now=now + 1_000)
        tx_uninterrupted = first.collect_raw_by_worker()
        flows_after = first.flow_count()
    finally:
        first.stop()

    second = build()
    try:
        second.restore(checkpoint_set)
        drive(second, suffix, final_now=now + 1_000)
        assert second.collect_raw_by_worker() == tx_uninterrupted
        assert second.flow_count() == flows_after
    finally:
        second.stop()


# -- shm ring mechanics the grid's geometry never reaches ---------------------


def tiny_ring_pair(workers=2, ring_slots=8, ring_slot_bytes=64):
    """An oracle + a process fleet whose rings hold only a few records.

    8 × 64-byte slots is ~256 bytes of payload per direction — a single
    8-packet burst wraps the ring edge repeatedly and overflows it
    outright, so wraparound and backpressure run on every turn instead
    of never.
    """
    def build(execution):
        return launch(
            RuntimeSpec(
                nf_factory=VigNat,
                config=make_config(None),
                workers=workers,
                execution=execution,
                transport="shm",
                ring_slots=ring_slots,
                ring_slot_bytes=ring_slot_bytes,
            )
        )

    return build(THREADED_DETERMINISTIC), build(PROCESS)


def test_ring_wraparound_is_byte_identical():
    """Spans crossing the ring edge reassemble exactly.

    192 packets through ~256-byte rings means the head wraps dozens of
    times, spans split across the edge in both directions, and every
    byte still matches the oracle.
    """
    oracle, proc = tiny_ring_pair()
    try:
        events, _ = outbound_events(192, make_config(None))
        drive(oracle, events)
        drive(proc, events)
        assert proc.collect_raw_by_worker() == tx_of_oracle(oracle)
        assert proc.op_counters() == oracle.op_counters()
        # The inject ring's head must have lapped the ring — otherwise
        # this test is not exercising wraparound at all.
        ring = proc._inject_rings[0]
        assert ring.head > ring.slots
    finally:
        oracle.stop()
        proc.stop()


def test_ring_full_backpressure_blocks_then_completes():
    """A burst bigger than the whole ring still goes through.

    The parent must split it into spans, block on ring-full, and rely
    on the worker's idle drain to free slots — the explicit
    backpressure path, visible in ``proc_ring_wait_ns``. The result is
    still byte-identical: backpressure may never drop or reorder.
    """
    oracle, proc = tiny_ring_pair(workers=1, ring_slots=4, ring_slot_bytes=64)
    try:
        events, _ = outbound_events(64, make_config(None))
        drive(oracle, events, burst=32)
        drive(proc, events, burst=32)
        assert proc.collect_raw_by_worker() == tx_of_oracle(oracle)
        waited = proc.transport_counters()["total"]["ring_wait_ns"]
        assert waited > 0, "tiny ring never filled — not a backpressure test"
    finally:
        oracle.stop()
        proc.stop()


def test_oversized_ring_burst_has_actionable_error():
    from repro.net.shmring import ShmRing

    ring = ShmRing(slots=2, slot_bytes=64)
    try:
        with pytest.raises(ValueError, match="ring_slots"):
            ring.try_push_burst(b"x" * 1024)
    finally:
        ring.unlink()


def test_crash_mid_burst_surfaces_and_cleans_rings():
    """SIGKILL mid-schedule: typed WorkerCrashed, no leaked segments.

    The dying worker can leave a half-written span; the head/tail
    protocol keeps it invisible, the parent reports the crash with the
    last acked sequence number, and stop() still unlinks every
    /dev/shm segment the fleet ever created.
    """
    proc = launch(
        RuntimeSpec(
            nf_factory=VigNat,
            config=make_config(None),
            workers=2,
            execution=PROCESS,
            transport="shm",
            turn_timeout_s=5.0,
        )
    )
    ring_names = [ring.name for ring in proc._all_rings]
    assert len(ring_names) == 4  # two rings per worker
    try:
        events, now = outbound_events(32, make_config(None))
        drive(proc, events)
        proc.collect_raw_by_worker()
        os.kill(proc._procs[1].pid, signal.SIGKILL)
        proc._procs[1].join()
        with pytest.raises(WorkerCrashed) as exc_info:
            for i in range(4):  # the kill may land between turns
                for packet, t in outbound_events(16, make_config(None))[0]:
                    proc.inject(packet.device, packet, now + i * 100)
                proc.main_loop_burst(now + i * 100 + 50, 8)
        assert exc_info.value.shard == 1
        assert exc_info.value.last_acked_seq > 0
    finally:
        proc.stop()
    leaked = [
        path
        for name in ring_names
        for path in glob.glob(f"/dev/shm/{name}")
    ]
    assert not leaked, f"leaked shm segments: {leaked}"
