"""Differential proof: process workers are byte-identical to the oracle.

The process-per-shard runtime's correctness argument is not a port of
the NAT proof — it is a reduction to it. The deterministic
:class:`~repro.net.dpdk.ShardedRuntime` is the verification oracle;
:class:`~repro.net.procrun.ProcessShardedRuntime` claims to run the
*same* per-shard data path on the *same* steered sub-schedules, just on
real cores. If that claim holds, every worker process must emit exactly
the TX records (port, device, timestamp, wire bytes) the oracle's
same-numbered worker emits, and the merged counters must match — on
every NF × fastpath × worker-count cell, for forward traffic and for
the steered return path.

The Hypothesis property extends the claim across restarts: a
coordinated checkpoint taken mid-schedule, restored into a *fresh*
process fleet, must replay the remaining schedule byte-identically to
the fleet that never restarted.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nat.cgnat import CgnatConfig, DetNat
from repro.nat.config import NatConfig
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.net.app import PROCESS, THREADED_DETERMINISTIC, RuntimeSpec, launch
from repro.packets.builder import make_udp_packet

WORKER_COUNTS = (1, 2, 4)

#: (name, factory, config, supports_fastpath)
NFS = (
    ("verified-nat", VigNat, None, True),
    ("unverified-nat", UnverifiedNat, None, True),
    ("det-nat", DetNat, "cgnat", False),
)

GRID = [
    pytest.param(name, factory, cfg_kind, fastpath, workers,
                 id=f"{name}-fp{int(fastpath)}-w{workers}")
    for name, factory, cfg_kind, supports_fp in NFS
    for fastpath in ((False, True) if supports_fp else (False,))
    for workers in WORKER_COUNTS
]


def make_config(kind):
    if kind == "cgnat":
        return CgnatConfig(
            max_flows=64,
            expiration_time=60_000_000,
            start_port=1000,
            subscriber_count=64,
            internal_port_base=1_024,
        )
    return NatConfig(
        max_flows=64, expiration_time=60_000_000, start_port=1000
    )


def outbound_events(count, cfg, start_us=1_000):
    """One outbound packet per flow, all translatable by every NF.

    DetNat only translates its configured subscriber/port domain, so
    the flows walk that domain — which the stateful NATs accept too.
    """
    ppn = getattr(cfg, "ports_per_subscriber", None)
    events = []
    now = start_us
    for i in range(count):
        if ppn:
            subscriber, offset = divmod(i % cfg.max_flows, ppn)
            src_ip = cfg.internal_base + subscriber
            src_port = cfg.internal_port_base + offset
        else:
            src_ip = 0x0A000001 + (i % 48)
            src_port = 1_024 + (i % 48)
        events.append(
            (
                make_udp_packet(
                    src_ip, "8.8.8.8", src_port, 20_000 + (i % 7), device=0
                ),
                now,
            )
        )
        now += 5
    return events, now


def drive(runtime, events, burst=8, final_now=None):
    pending = 0
    now = 0
    for packet, now in events:
        runtime.inject(packet.device, packet.clone(), now)
        pending += 1
        if pending >= burst:
            runtime.main_loop_burst(now, burst)
            pending = 0
    final = final_now if final_now is not None else now + 1
    runtime.main_loop_burst(final, burst)
    runtime.main_loop_burst(final + 1, burst)


def tx_of_oracle(runtime):
    return [
        [
            (port, packet.device, ts, packet.wire_bytes())
            for port, ts, packet in worker_records
        ]
        for worker_records in runtime.collect_by_worker()
    ]


def launch_pair(factory, cfg_kind, fastpath, workers):
    def build(execution):
        return launch(
            RuntimeSpec(
                nf_factory=factory,
                config=make_config(cfg_kind),
                workers=workers,
                execution=execution,
                fastpath=fastpath,
            )
        )

    return build(THREADED_DETERMINISTIC), build(PROCESS)


@pytest.mark.parametrize("name,factory,cfg_kind,fastpath,workers", GRID)
def test_byte_identity_on_grid(name, factory, cfg_kind, fastpath, workers):
    """Forward + return traffic, every cell: same bytes, same counters."""
    oracle, proc = launch_pair(factory, cfg_kind, fastpath, workers)
    try:
        events, now = outbound_events(96, make_config(cfg_kind))
        drive(oracle, events)
        drive(proc, events)

        oracle_fwd = tx_of_oracle(oracle)
        proc_fwd = proc.collect_raw_by_worker()
        assert proc_fwd == oracle_fwd, f"{name}: forward TX diverged"
        assert any(records for records in oracle_fwd), "no traffic flowed"

        # Return path: replies to every translated port, steered by
        # external-port ownership — the sharding-sensitive direction.
        ext_ip = oracle.config.external_ip
        replies = []
        reply_now = now + 100
        for worker_records in oracle_fwd:
            for _, _, _, wire in worker_records:
                from repro.packets.headers import Packet

                out = Packet.from_bytes(wire, device=1)
                if out.ipv4.src_ip != ext_ip:
                    continue
                replies.append(
                    (
                        make_udp_packet(
                            "8.8.8.8",
                            ext_ip,
                            out.l4.dst_port,
                            out.l4.src_port,
                            device=1,
                        ),
                        reply_now,
                    )
                )
                reply_now += 5
        assert replies, f"{name}: no translated output to reply to"
        drive(oracle, replies)
        drive(proc, replies)
        assert proc.collect_raw_by_worker() == tx_of_oracle(oracle), (
            f"{name}: return-path TX diverged"
        )

        assert proc.op_counters() == oracle.op_counters()
        assert proc.drop_causes() == oracle.drop_causes()
        assert proc.flow_count() == oracle.flow_count()
        assert proc.steered == oracle.steered
    finally:
        oracle.stop()
        proc.stop()


flows = st.lists(
    st.tuples(
        st.integers(min_value=0x0A000001, max_value=0x0A00003F),
        st.integers(min_value=1_024, max_value=60_000),
    ),
    min_size=4,
    max_size=24,
    unique=True,
)


@settings(max_examples=12, deadline=None)
@given(flows=flows, split=st.integers(min_value=1, max_value=23),
       workers=st.sampled_from((1, 2)))
def test_checkpoint_restores_into_byte_identical_replay(
    flows, split, workers
):
    """Coordinated checkpoint = a cut you can restart from, losslessly.

    Drive a prefix, checkpoint, drive the suffix and record its TX;
    then restore the checkpoint into a fresh process fleet and drive
    the same suffix: the restarted fleet must emit the same bytes.
    """
    split = min(split, len(flows) - 1)
    events = []
    now = 1_000
    for src_ip, src_port in flows:
        events.append(
            (
                make_udp_packet(src_ip, "8.8.8.8", src_port, 53, device=0),
                now,
            )
        )
        now += 5
    prefix, suffix = events[:split], events[split:]

    def build():
        return launch(
            RuntimeSpec(
                nf_factory=VigNat,
                config=NatConfig(
                    max_flows=64,
                    expiration_time=60_000_000,
                    start_port=1000,
                ),
                workers=workers,
                execution=PROCESS,
            )
        )

    first = build()
    try:
        drive(first, prefix)
        first.collect_raw_by_worker()  # discard prefix TX
        checkpoint_set = first.checkpoint(now_us=now)
        drive(first, suffix, final_now=now + 1_000)
        tx_uninterrupted = first.collect_raw_by_worker()
        flows_after = first.flow_count()
    finally:
        first.stop()

    second = build()
    try:
        second.restore(checkpoint_set)
        drive(second, suffix, final_now=now + 1_000)
        assert second.collect_raw_by_worker() == tx_uninterrupted
        assert second.flow_count() == flows_after
    finally:
        second.stop()
