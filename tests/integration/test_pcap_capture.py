"""Capture a NAT conversation to pcap and reparse it byte-accurately."""

from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.net.dpdk import DpdkRuntime
from repro.packets.builder import make_udp_packet
from repro.packets.pcap import read_pcap_file, write_pcap_file


class TestPcapCapture:
    def test_testbed_traffic_dumps_and_reloads(self, tmp_path):
        cfg = NatConfig(max_flows=16)
        runtime = DpdkRuntime()
        nat = VigNat(cfg)

        for i in range(5):
            packet = make_udp_packet("10.0.0.5", "8.8.8.8", 4000 + i, 53, device=0)
            runtime.inject(0, packet, timestamp=1_000 + i)
        for mbuf in runtime.rx_burst(0, 32):
            outputs = nat.process(mbuf.packet, 2_000)
            if outputs:
                mbuf.packet = outputs[0]
                runtime.tx_burst(outputs[0].device, [mbuf], 2_000)
            else:
                runtime.free(mbuf)

        path = str(tmp_path / "translated.pcap")
        records = [
            (ts, pkt.to_bytes()) for _port, ts, pkt in runtime.collect()
        ]
        write_pcap_file(path, records)

        reloaded = read_pcap_file(path)
        assert len(reloaded) == 5
        for record in reloaded:
            packet = record.packet()
            assert packet.ipv4.src_ip == cfg.external_ip  # translated
            assert packet.ipv4.header_checksum_valid()
            assert packet.l4_checksum_valid()

    def test_latency_confidence_interval(self):
        """The Fig. 12 CI statistic is computable and tight at low load."""
        from repro.net.costmodel import CostModel
        from repro.net.moongen import BackgroundFlows
        from repro.net.testbed import Rfc2544Testbed

        testbed = Rfc2544Testbed(cost_model=CostModel())
        source = BackgroundFlows(4, total_pps=1_000, duration_ns=10**9)
        result = testbed.run(VigNat(NatConfig(max_flows=16)), source.events())
        ci = result.all_latency.confidence_interval_us()
        assert ci >= 0
        assert ci < 0.5  # tight: latencies are near-deterministic
