"""Concrete replay of every symbolic path on the real VigNat.

The reverse direction of model validation: each explored path's witness
is realized as an actual packet + flow-table state, the *deployed* NAT
processes it, and the concrete behaviour must match what the trace
promised (forward vs drop, output device, source rewriting).
"""

import pytest

from repro.nat.config import NatConfig
from repro.verif.concretize import replay_all
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env import vignat_symbolic_body

CFG = NatConfig(max_flows=8, expiration_time=2_000_000, start_port=1000)


@pytest.fixture(scope="module")
def outcomes():
    result = ExhaustiveSymbolicEngine().explore(vignat_symbolic_body(CFG))
    return replay_all(result.tree.paths, CFG)


class TestConcreteReplay:
    def test_no_mismatches(self, outcomes):
        mismatches = [o for o in outcomes if o.status == "mismatch"]
        assert not mismatches, [
            (o.path_id, o.detail) for o in mismatches
        ]

    def test_most_paths_concretizable(self, outcomes):
        matched = [o for o in outcomes if o.status == "match"]
        assert len(matched) >= len(outcomes) // 2

    def test_model_only_paths_are_documented_overapproximation(self, outcomes):
        """Flag combos only the model can exhibit are allowed, and few."""
        model_only = [o for o in outcomes if o.status == "model_only"]
        assert len(model_only) <= len(outcomes) // 3

    def test_every_path_classified(self, outcomes):
        assert all(
            o.status in ("match", "mismatch", "model_only", "skipped")
            for o in outcomes
        )
        assert len(outcomes) >= 12
