"""Quick-scale runs of the §6 experiment harness: the shapes must hold."""

import pytest

from repro.eval.experiments import (
    EvalSettings,
    default_nf_factories,
    latency_ccdf,
    latency_vs_occupancy,
    throughput_sweep,
)
from repro.eval.reporting import (
    render_fig12,
    render_fig13,
    render_fig14,
    render_verification,
)
from repro.eval.verification_stats import collect

QUICK = EvalSettings(
    background_pps=20_000,
    measure_seconds=0.3,
    probe_flows=150,
    probe_pps=0.47,
)


@pytest.fixture(scope="module")
def fig12_points():
    return latency_vs_occupancy(occupancies=(500, 2_000), settings=QUICK)


class TestFig12Shape:
    def test_all_series_present(self, fig12_points):
        assert {p.nf for p in fig12_points} == {"noop", "unverified-nat", "verified-nat"}

    def test_ordering_noop_fastest(self, fig12_points):
        by_nf = {}
        for p in fig12_points:
            by_nf.setdefault(p.nf, []).append(p.avg_us)
        for occupancy_idx in range(2):
            assert (
                by_nf["noop"][occupancy_idx]
                < by_nf["unverified-nat"][occupancy_idx]
                < by_nf["verified-nat"][occupancy_idx]
            )

    def test_verified_within_10pct_of_unverified(self, fig12_points):
        by_nf = {}
        for p in fig12_points:
            by_nf.setdefault(p.nf, []).append(p.avg_us)
        for a, b in zip(by_nf["verified-nat"], by_nf["unverified-nat"]):
            assert a / b < 1.10

    def test_latency_flat_across_occupancy(self, fig12_points):
        by_nf = {}
        for p in fig12_points:
            by_nf.setdefault(p.nf, []).append(p.avg_us)
        for series in by_nf.values():
            assert max(series) - min(series) < 0.3  # µs

    def test_samples_collected(self, fig12_points):
        assert all(p.samples > 10 for p in fig12_points)

    def test_rendering(self, fig12_points):
        text = render_fig12(fig12_points)
        assert "Fig. 12" in text and "verified-nat" in text


class TestFig13Shape:
    def test_ccdf_monotone_and_tailed(self):
        series = latency_ccdf(background_flows=1_500, settings=QUICK)
        for s in series:
            probs = [p for _, p in s.points]
            assert all(b <= a for a, b in zip(probs, probs[1:]))
            assert s.points[-1][1] == 0.0
        text = render_fig13(series)
        assert "Fig. 13" in text

    def test_tails_coincide_above_outlier_threshold(self):
        """The paper: the three curves coincide beyond ~6.5 µs (DPDK)."""
        series = latency_ccdf(background_flows=1_500, settings=QUICK)
        at_100us = [s.probability_above(100.0) for s in series]
        # Outlier region: all NFs within one order of magnitude.
        positive = [p for p in at_100us if p > 0]
        if len(positive) >= 2:
            assert max(positive) / min(positive) < 20


class TestFig14Shape:
    @pytest.fixture(scope="class")
    def sweep(self):
        settings = EvalSettings(
            expiration_seconds=60.0,
            throughput_packets=6_000,
            throughput_iterations=5,
        )
        return throughput_sweep(flow_counts=(512,), settings=settings)

    def test_ordering(self, sweep):
        mpps = {name: rs[0].max_mpps for name, rs in sweep.items()}
        assert mpps["noop"] > mpps["unverified-nat"] > mpps["verified-nat"]
        assert mpps["verified-nat"] > mpps["linux-nat"]

    def test_verified_penalty_roughly_10pct(self, sweep):
        mpps = {name: rs[0].max_mpps for name, rs in sweep.items()}
        penalty = 1 - mpps["verified-nat"] / mpps["unverified-nat"]
        assert 0.0 < penalty < 0.25

    def test_linux_much_slower(self, sweep):
        mpps = {name: rs[0].max_mpps for name, rs in sweep.items()}
        assert mpps["linux-nat"] < mpps["verified-nat"] / 2

    def test_rendering(self, sweep):
        assert "Fig. 14" in render_fig14(sweep)


class TestVerificationStats:
    def test_pipeline_verifies_vignat(self):
        stats = collect()
        assert stats.verified
        assert stats.paths >= 12
        assert stats.traces > stats.paths
        assert stats.explore_seconds < 60
        text = render_verification(stats)
        assert "VERIFIED" in text


class TestFactories:
    def test_default_lineup(self):
        assert set(default_nf_factories()) == {
            "noop", "unverified-nat", "verified-nat",
        }
        assert "linux-nat" in default_nf_factories(include_linux=True)
