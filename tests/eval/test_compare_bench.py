"""The CI benchmark-regression gate (benchmarks/compare_bench.py)."""

import copy
import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from benchmarks.compare_bench import compare_dirs, main  # noqa: E402

BASE_RECORDS = [
    {
        "nf": "noop",
        "flow_count": 64,
        "identical": True,
        "replay_pps_off": 1_000_000.0,
        "replay_pps_on": 1_200_000.0,
        "modeled_busy_ns_off": 260.0,
    },
    {
        "nf": "unverified-nat",
        "flow_count": 64,
        "identical": True,
        "replay_pps_off": 350_000.0,
        "replay_pps_on": 460_000.0,
        "modeled_busy_ns_off": 480.0,
    },
    {
        "nf": "verified-nat",
        "flow_count": 64,
        "identical": True,
        "replay_pps_off": 210_000.0,
        "replay_pps_on": 410_000.0,
        "modeled_busy_ns_off": 540.0,
    },
]


def _write(directory: pathlib.Path, records) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_fastpath.json").write_text(json.dumps(records))


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    _write(baseline, BASE_RECORDS)
    return baseline, fresh


def test_identical_results_pass(dirs):
    baseline, fresh = dirs
    _write(fresh, BASE_RECORDS)
    assert compare_dirs(baseline, fresh, tolerance=0.25) == []


def test_small_drift_within_tolerance_passes(dirs):
    baseline, fresh = dirs
    drifted = copy.deepcopy(BASE_RECORDS)
    for record in drifted:
        record["replay_pps_off"] *= 0.85
        record["replay_pps_on"] *= 1.1
    _write(fresh, drifted)
    assert compare_dirs(baseline, fresh, tolerance=0.25) == []


def test_seeded_regression_fails(dirs):
    """The acceptance scenario: a >25% replay throughput drop must fail."""
    baseline, fresh = dirs
    regressed = copy.deepcopy(BASE_RECORDS)
    regressed[2]["replay_pps_on"] *= 0.6  # verified-nat down 40%
    _write(fresh, regressed)
    failures = compare_dirs(baseline, fresh, tolerance=0.25)
    assert len(failures) == 1
    assert "verified-nat" in failures[0]
    assert "replay_pps_on" in failures[0]
    assert main(
        ["--baseline", str(baseline), "--fresh", str(fresh)]
    ) == 1


def test_lost_byte_identity_fails(dirs):
    baseline, fresh = dirs
    diverged = copy.deepcopy(BASE_RECORDS)
    diverged[0]["identical"] = False
    _write(fresh, diverged)
    failures = compare_dirs(baseline, fresh, tolerance=0.25)
    assert any("byte-identity" in f for f in failures)


def test_lost_nf_ordering_fails(dirs):
    baseline, fresh = dirs
    reordered = copy.deepcopy(BASE_RECORDS)
    # The noop forwarder suddenly costs more than the verified NAT.
    reordered[0]["modeled_busy_ns_off"] = 900.0
    _write(fresh, reordered)
    failures = compare_dirs(baseline, fresh, tolerance=0.25)
    assert any("ordering" in f for f in failures)


def test_missing_fresh_file_fails(dirs):
    baseline, fresh = dirs
    fresh.mkdir()
    failures = compare_dirs(baseline, fresh, tolerance=0.25)
    assert any("missing" in f for f in failures)


def test_no_common_points_fails(dirs):
    baseline, fresh = dirs
    other = copy.deepcopy(BASE_RECORDS)
    for record in other:
        record["flow_count"] = 4096
    _write(fresh, other)
    failures = compare_dirs(baseline, fresh, tolerance=0.25)
    assert any("no common" in f for f in failures)


def test_baseline_only_points_do_not_fail(dirs):
    """Smoke scale sweeps fewer points; losing coverage only warns."""
    baseline, fresh = dirs
    subset = copy.deepcopy(BASE_RECORDS[:2])
    _write(fresh, subset)
    assert compare_dirs(baseline, fresh, tolerance=0.25) == []


def test_main_passes_on_identical(dirs, capsys):
    baseline, fresh = dirs
    _write(fresh, BASE_RECORDS)
    assert main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    assert "gate passed" in capsys.readouterr().out
