"""The CI benchmark-regression gate (benchmarks/compare_bench.py)."""

import copy
import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from benchmarks.compare_bench import compare_dirs, main  # noqa: E402

BASE_RECORDS = [
    {
        "nf": "noop",
        "flow_count": 64,
        "identical": True,
        "replay_pps_off": 1_000_000.0,
        "replay_pps_on": 1_200_000.0,
        "modeled_busy_ns_off": 260.0,
    },
    {
        "nf": "unverified-nat",
        "flow_count": 64,
        "identical": True,
        "replay_pps_off": 350_000.0,
        "replay_pps_on": 460_000.0,
        "modeled_busy_ns_off": 480.0,
    },
    {
        "nf": "verified-nat",
        "flow_count": 64,
        "identical": True,
        "replay_pps_off": 210_000.0,
        "replay_pps_on": 410_000.0,
        "modeled_busy_ns_off": 540.0,
    },
]

# Minimal healthy budget-gated files: the gate requires these baselines
# to exist and every one of their points to be matched.
FAILOVER_RECORDS = [
    {"nf": "verified-nat", "lag": 0, "flows_lost": 0, "recovery_us": 700},
    {"nf": "verified-nat", "lag": 8, "flows_lost": 3, "recovery_us": 730},
]

CGNAT_RECORDS = [
    {
        "nf": "det-nat",
        "flow_count": 64,
        "replay_pps_off": 200_000.0,
        "state_entries": 0,
        "checkpoint_bytes": 2,
        "identical": True,
    },
    {
        "nf": "det-nat",
        "flow_count": 640,
        "replay_pps_off": 195_000.0,
        "state_entries": 0,
        "checkpoint_bytes": 2,
        "identical": True,
    },
    {
        "nf": "verified-nat",
        "flow_count": 64,
        "replay_pps_off": 90_000.0,
        "state_entries": 64,
        "checkpoint_bytes": 4_000,
        "identical": True,
    },
    {
        "nf": "verified-nat",
        "flow_count": 640,
        "replay_pps_off": 80_000.0,
        "state_entries": 640,
        "checkpoint_bytes": 40_000,
        "identical": True,
    },
]


PROCS_RECORDS = [
    {
        "nf": "verified-nat",
        "workers": 1,
        "cores": 4,
        "replay_pps": 100_000.0,
        "identical": True,
    },
    {
        "nf": "verified-nat",
        "workers": 4,
        "cores": 4,
        "replay_pps": 250_000.0,
        "identical": True,
    },
]


CHAIN_RECORDS = [
    {
        "nf": "chain",
        "scenario": "warm-upgrade",
        "offered": 1_024,
        "delivered": 960,
        "lost": 64,
        "availability": 0.9375,
        "disruption_us": 1_000,
        "flows_lost": 0,
        "probe_lost": 0,
        "sla_ok": True,
        "details": {},
    },
    {
        "nf": "chain",
        "scenario": "promote-stage",
        "offered": 1_024,
        "delivered": 896,
        "lost": 128,
        "availability": 0.875,
        "disruption_us": 2_000,
        "flows_lost": 0,
        "probe_lost": 0,
        "sla_ok": True,
        "details": {},
    },
    {
        "nf": "chain",
        "scenario": "chaos-soak",
        "offered": 1_024,
        "delivered": 1_000,
        "lost": 24,
        "availability": 0.9766,
        "disruption_us": 4_000,
        "flows_lost": 0,
        "probe_lost": 0,
        "sla_ok": True,
        "details": {"faults_applied": {"link-drop": 5, "reorder": 3}},
    },
]


def _write(
    directory: pathlib.Path,
    records,
    failover=FAILOVER_RECORDS,
    cgnat=CGNAT_RECORDS,
    procs=PROCS_RECORDS,
    chain=CHAIN_RECORDS,
) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_fastpath.json").write_text(json.dumps(records))
    if failover is not None:
        (directory / "BENCH_failover.json").write_text(json.dumps(failover))
    if cgnat is not None:
        (directory / "BENCH_cgnat.json").write_text(json.dumps(cgnat))
    if procs is not None:
        (directory / "BENCH_procs.json").write_text(json.dumps(procs))
    if chain is not None:
        (directory / "BENCH_chain.json").write_text(json.dumps(chain))


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    _write(baseline, BASE_RECORDS)
    return baseline, fresh


def test_identical_results_pass(dirs):
    baseline, fresh = dirs
    _write(fresh, BASE_RECORDS)
    assert compare_dirs(baseline, fresh, tolerance=0.25) == []


def test_small_drift_within_tolerance_passes(dirs):
    baseline, fresh = dirs
    drifted = copy.deepcopy(BASE_RECORDS)
    for record in drifted:
        record["replay_pps_off"] *= 0.85
        record["replay_pps_on"] *= 1.1
    _write(fresh, drifted)
    assert compare_dirs(baseline, fresh, tolerance=0.25) == []


def test_seeded_regression_fails(dirs):
    """The acceptance scenario: a >25% replay throughput drop must fail."""
    baseline, fresh = dirs
    regressed = copy.deepcopy(BASE_RECORDS)
    regressed[2]["replay_pps_on"] *= 0.6  # verified-nat down 40%
    _write(fresh, regressed)
    failures = compare_dirs(baseline, fresh, tolerance=0.25)
    assert len(failures) == 1
    assert "verified-nat" in failures[0]
    assert "replay_pps_on" in failures[0]
    assert main(
        ["--baseline", str(baseline), "--fresh", str(fresh)]
    ) == 1


def test_lost_byte_identity_fails(dirs):
    baseline, fresh = dirs
    diverged = copy.deepcopy(BASE_RECORDS)
    diverged[0]["identical"] = False
    _write(fresh, diverged)
    failures = compare_dirs(baseline, fresh, tolerance=0.25)
    assert any("byte-identity" in f for f in failures)


def test_lost_nf_ordering_fails(dirs):
    baseline, fresh = dirs
    reordered = copy.deepcopy(BASE_RECORDS)
    # The noop forwarder suddenly costs more than the verified NAT.
    reordered[0]["modeled_busy_ns_off"] = 900.0
    _write(fresh, reordered)
    failures = compare_dirs(baseline, fresh, tolerance=0.25)
    assert any("ordering" in f for f in failures)


def test_missing_fresh_file_fails(dirs):
    baseline, fresh = dirs
    fresh.mkdir()
    failures = compare_dirs(baseline, fresh, tolerance=0.25)
    assert any("missing" in f for f in failures)


def test_no_common_points_fails(dirs):
    baseline, fresh = dirs
    other = copy.deepcopy(BASE_RECORDS)
    for record in other:
        record["flow_count"] = 4096
    _write(fresh, other)
    failures = compare_dirs(baseline, fresh, tolerance=0.25)
    assert any("no common" in f for f in failures)


def test_baseline_only_points_do_not_fail(dirs):
    """Smoke scale sweeps fewer points; losing coverage only warns —
    for trend-tracking files, not budget-gating ones."""
    baseline, fresh = dirs
    subset = copy.deepcopy(BASE_RECORDS[:2])
    _write(fresh, subset)
    assert compare_dirs(baseline, fresh, tolerance=0.25) == []


def test_main_passes_on_identical(dirs, capsys):
    baseline, fresh = dirs
    _write(fresh, BASE_RECORDS)
    assert main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    assert "gate passed" in capsys.readouterr().out


class TestBudgetGatedStrictness:
    """Failover and cgnat bound a budget: dropped points and deleted
    baselines are hard errors, never warnings."""

    def test_baseline_only_point_is_a_hard_error(self, dirs):
        baseline, fresh = dirs
        _write(fresh, BASE_RECORDS, failover=FAILOVER_RECORDS[:1])
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any(
            "BENCH_failover.json" in f and "must be matched" in f
            for f in failures
        )

    def test_dropped_cgnat_point_is_a_hard_error(self, dirs):
        baseline, fresh = dirs
        # Losing the 10x det-nat point would let a regrowing footprint
        # slip past the flatness check.
        _write(fresh, BASE_RECORDS, cgnat=CGNAT_RECORDS[:1] + CGNAT_RECORDS[2:])
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any(
            "BENCH_cgnat.json" in f and "must be matched" in f for f in failures
        )

    def test_deleted_budget_baseline_is_a_hard_error(self, tmp_path):
        baseline = tmp_path / "baseline"
        fresh = tmp_path / "fresh"
        _write(baseline, BASE_RECORDS, cgnat=None)
        _write(fresh, BASE_RECORDS)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any(
            "BENCH_cgnat.json" in f and "baseline missing" in f
            for f in failures
        )

    def test_recovery_regression_still_gates(self, dirs):
        baseline, fresh = dirs
        slower = copy.deepcopy(FAILOVER_RECORDS)
        slower[0]["recovery_us"] = 2_000
        _write(fresh, BASE_RECORDS, failover=slower)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any("recovery_us" in f for f in failures)


class TestCgnatInvariants:
    """The fresh-file flatness invariant: the sweep must keep measuring
    what it claims to, even when every point matches its baseline."""

    def test_healthy_records_pass(self, dirs):
        baseline, fresh = dirs
        _write(fresh, BASE_RECORDS)
        assert compare_dirs(baseline, fresh, tolerance=0.25) == []

    def test_det_nat_with_state_fails(self, dirs):
        baseline, fresh = dirs
        stateful = copy.deepcopy(CGNAT_RECORDS)
        stateful[1]["state_entries"] = 640
        _write(fresh, BASE_RECORDS, cgnat=stateful)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any("zero flow state" in f for f in failures)

    def test_det_nat_growing_checkpoint_fails(self, dirs):
        baseline, fresh = dirs
        growing = copy.deepcopy(CGNAT_RECORDS)
        growing[1]["checkpoint_bytes"] = 4_000
        _write(fresh, BASE_RECORDS, cgnat=growing)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any("not flat" in f for f in failures)

    def test_stateful_contrast_must_grow(self, dirs):
        baseline, fresh = dirs
        flat = copy.deepcopy(CGNAT_RECORDS)
        flat[3]["state_entries"] = 64  # verified-nat stopped growing
        _write(fresh, BASE_RECORDS, cgnat=flat)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any("stateful contrast" in f for f in failures)

    def test_missing_state_fields_fail(self, dirs):
        baseline, fresh = dirs
        stripped = copy.deepcopy(CGNAT_RECORDS)
        for record in stripped:
            record.pop("checkpoint_bytes")
        _write(fresh, BASE_RECORDS, cgnat=stripped)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any("missing state_entries/checkpoint_bytes" in f for f in failures)


class TestProcsInvariants:
    """The process-runtime gate: byte-identity always, scaling judged
    against the machine shape the fresh run actually had."""

    def test_healthy_records_pass(self, dirs):
        baseline, fresh = dirs
        _write(fresh, BASE_RECORDS)
        assert compare_dirs(baseline, fresh, tolerance=0.25) == []

    def test_lost_oracle_identity_fails(self, dirs):
        baseline, fresh = dirs
        diverged = copy.deepcopy(PROCS_RECORDS)
        diverged[1]["identical"] = False
        _write(fresh, BASE_RECORDS, procs=diverged)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any(
            "BENCH_procs.json" in f and "byte-identity" in f for f in failures
        )

    def test_sub_2x_scaling_on_four_cores_fails(self, dirs):
        """The acceptance claim: 4 workers on >=4 cores must clear 2x."""
        baseline, fresh = dirs
        slow = copy.deepcopy(PROCS_RECORDS)
        slow[1]["replay_pps"] = 150_000.0  # 1.5x < the required 2x
        _write(fresh, BASE_RECORDS, procs=slow)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any(
            "BENCH_procs.json" in f and "below required" in f
            for f in failures
        )

    def test_single_core_run_only_enforces_the_floor(self, dirs):
        """On a 1-core box, 4 workers at 0.6x is overhead, not a
        regression — but 0.2x means the pipes ate the runtime."""
        baseline, fresh = dirs
        one_core = copy.deepcopy(PROCS_RECORDS)
        for record in one_core:
            record["cores"] = 1
        one_core[1]["replay_pps"] = 60_000.0
        _write(fresh, BASE_RECORDS, procs=one_core)
        assert compare_dirs(baseline, fresh, tolerance=0.25) == []
        one_core[1]["replay_pps"] = 20_000.0
        _write(fresh, BASE_RECORDS, procs=one_core)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any("single-core floor" in f for f in failures)

    def test_missing_anchor_fails(self, dirs):
        baseline, fresh = dirs
        _write(fresh, BASE_RECORDS, procs=PROCS_RECORDS[1:])
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any("1-worker anchor" in f for f in failures)

    def test_cross_shape_pps_comparison_is_skipped(self, dirs):
        """A 4-core baseline vs a 1-core fresh run: absolute rates are
        incomparable, so a big drop must not read as a regression."""
        baseline, fresh = dirs
        one_core = copy.deepcopy(PROCS_RECORDS)
        for record in one_core:
            record["cores"] = 1
            record["replay_pps"] *= 0.4
        one_core[1]["replay_pps"] = one_core[0]["replay_pps"] * 0.6
        _write(fresh, BASE_RECORDS, procs=one_core)
        assert compare_dirs(baseline, fresh, tolerance=0.25) == []

    def test_dropped_procs_point_is_a_hard_error(self, dirs):
        baseline, fresh = dirs
        _write(fresh, BASE_RECORDS, procs=PROCS_RECORDS[:1])
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any(
            "BENCH_procs.json" in f and "must be matched" in f
            for f in failures
        )


class TestChainInvariants:
    """The operational-suite gate: measured SLAs, lossless state
    carriage across control actions, and a fault ledger that proves
    the chaos soak actually soaked."""

    def test_healthy_records_pass(self, dirs):
        baseline, fresh = dirs
        _write(fresh, BASE_RECORDS)
        assert compare_dirs(baseline, fresh, tolerance=0.25) == []

    def test_sla_breach_fails(self, dirs):
        baseline, fresh = dirs
        breached = copy.deepcopy(CHAIN_RECORDS)
        breached[0]["sla_ok"] = False
        _write(fresh, BASE_RECORDS, chain=breached)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any(
            "BENCH_chain.json" in f and "breached its declared SLA" in f
            for f in failures
        )

    def test_mapping_loss_during_promotion_fails(self, dirs):
        baseline, fresh = dirs
        lossy = copy.deepcopy(CHAIN_RECORDS)
        lossy[1]["flows_lost"] = 2
        _write(fresh, BASE_RECORDS, chain=lossy)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        # Both the generic 0 -> >0 transition gate and the chain
        # invariant must name the loss.
        assert any("must carry state" in f for f in failures)
        assert any("flows_lost regressed from 0" in f for f in failures)

    def test_quiet_chaos_soak_fails(self, dirs):
        baseline, fresh = dirs
        quiet = copy.deepcopy(CHAIN_RECORDS)
        quiet[2]["details"]["faults_applied"] = {}
        _write(fresh, BASE_RECORDS, chain=quiet)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any("applied no faults" in f for f in failures)

    def test_soak_without_reordering_fails(self, dirs):
        baseline, fresh = dirs
        unshuffled = copy.deepcopy(CHAIN_RECORDS)
        unshuffled[2]["details"]["faults_applied"] = {"link-drop": 5}
        _write(fresh, BASE_RECORDS, chain=unshuffled)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any("reordering link" in f for f in failures)

    def test_disruption_regression_fails(self, dirs):
        baseline, fresh = dirs
        slower = copy.deepcopy(CHAIN_RECORDS)
        slower[0]["disruption_us"] = 5_000  # 5x the baseline window
        _write(fresh, BASE_RECORDS, chain=slower)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any(
            "BENCH_chain.json" in f and "disruption_us" in f
            for f in failures
        )

    def test_dropped_scenario_is_a_hard_error(self, dirs):
        baseline, fresh = dirs
        _write(fresh, BASE_RECORDS, chain=CHAIN_RECORDS[:2])
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any(
            "BENCH_chain.json" in f and "must be matched" in f
            for f in failures
        )

    def test_deleted_chain_baseline_is_a_hard_error(self, tmp_path):
        baseline = tmp_path / "baseline"
        fresh = tmp_path / "fresh"
        _write(baseline, BASE_RECORDS, chain=None)
        _write(fresh, BASE_RECORDS)
        failures = compare_dirs(baseline, fresh, tolerance=0.25)
        assert any(
            "BENCH_chain.json" in f and "baseline missing" in f
            for f in failures
        )
