"""ASCII chart rendering."""

from repro.eval.ascii_chart import latency_chart, line_chart, throughput_chart
from repro.eval.experiments import LatencyPoint
from repro.net.testbed import ThroughputResult


class TestLineChart:
    def test_marks_present_for_each_series(self):
        chart = line_chart(
            {"a": [(0, 1.0), (10, 1.0)], "b": [(0, 2.0), (10, 2.5)]},
            title="t",
        )
        assert "o" in chart and "*" in chart
        assert "o a" in chart and "* b" in chart

    def test_axis_labels(self):
        chart = line_chart(
            {"a": [(1, 5.0), (64, 5.5)]},
            y_label="latency", x_label="flows",
        )
        assert "latency" in chart and "flows" in chart
        assert "1" in chart and "64" in chart

    def test_flat_series_visible(self):
        chart = line_chart({"flat": [(0, 3.0), (5, 3.0), (10, 3.0)]})
        assert "o" in chart

    def test_empty_series(self):
        assert line_chart({}, title="nothing") == "nothing"

    def test_extremes_on_chart_edges(self):
        chart = line_chart({"a": [(0, 0.0), (10, 10.0)]}, height=8, width=30)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert "o" in rows[0] or "o" in rows[1]  # max near the top
        assert "o" in rows[-1] or "o" in rows[-2]  # min near the bottom


class TestFigureCharts:
    def test_latency_chart(self):
        points = [
            LatencyPoint("noop", 1_000, 4.75, 4.8, 100),
            LatencyPoint("noop", 64_000, 4.76, 4.8, 100),
            LatencyPoint("verified-nat", 1_000, 5.13, 5.2, 100),
            LatencyPoint("verified-nat", 64_000, 5.41, 5.6, 100),
        ]
        chart = latency_chart(points)
        assert "Fig. 12" in chart
        assert "noop" in chart and "verified-nat" in chart

    def test_throughput_chart(self):
        results = {
            "noop": [ThroughputResult(1_000, 3.2, 0.0)],
            "verified-nat": [
                ThroughputResult(1_000, 1.85, 0.0),
                ThroughputResult(64_000, 1.83, 0.0),
            ],
        }
        chart = throughput_chart(results)
        assert "Fig. 14" in chart
        assert "Mpps" in chart
