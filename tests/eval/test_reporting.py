"""Table renderers for the evaluation artifacts."""

from repro.eval.experiments import CcdfSeries, LatencyPoint
from repro.eval.reporting import (
    render_fig12,
    render_fig13,
    render_fig14,
    render_verification,
)
from repro.eval.verification_stats import collect
from repro.net.testbed import ThroughputResult


class TestFig12Render:
    def test_rows_and_columns(self):
        points = [
            LatencyPoint("noop", 1_000, 4.75, 4.8, 100),
            LatencyPoint("noop", 64_000, 4.76, 4.8, 100),
            LatencyPoint("verified-nat", 1_000, 5.13, 5.2, 100),
        ]
        text = render_fig12(points)
        assert "4.75" in text and "5.13" in text
        assert "     -" in text  # missing cell rendered as dash
        assert "1" in text and "64" in text  # occupancy headers in k


class TestFig13Render:
    def test_threshold_columns(self):
        series = [CcdfSeries("noop", [(4.75, 0.5), (300.0, 0.0)], samples=10)]
        text = render_fig13(series, thresholds=(5.0, 100.0), background_flows=30_000)
        assert "30k" in text
        assert "5.0" in text and "100.0" in text
        assert "noop" in text

    def test_probability_above_endpoints(self):
        series = CcdfSeries("x", [(5.0, 0.5), (10.0, 0.0)], samples=4)
        assert series.probability_above(1.0) == 1.0  # below all samples
        assert series.probability_above(5.0) == 0.5
        assert series.probability_above(99.0) == 0.0

    def test_empty_series(self):
        assert CcdfSeries("x", [], 0).probability_above(1.0) == 0.0


class TestFig14Render:
    def test_rows(self):
        results = {
            "noop": [ThroughputResult(1_000, 3.2, 0.0)],
            "linux-nat": [ThroughputResult(1_000, 0.65, 0.0005)],
        }
        text = render_fig14(results)
        assert "3.20" in text and "0.65" in text


class TestVerificationRender:
    def test_mentions_paper_numbers(self):
        stats = collect()
        text = render_verification(stats)
        assert "108 paths" in text  # the paper's reference point
        assert "VERIFIED" in text
        assert str(stats.paths) in text
