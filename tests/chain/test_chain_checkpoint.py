"""Chain-wide coordinated checkpoint/restore: one ``repro-ckpt-set/v1``
set per chain, one frame per stage, adopted all-or-nothing."""

import pytest

from repro.chain import ChainSpec, ChainStage, default_chain_spec, launch_chain
from repro.nat.config import NatConfig
from repro.nat.noop import NoopForwarder
from repro.nat.vignat import VigNat
from repro.net.app import PROCESS
from repro.packets.builder import make_udp_packet
from repro.resil.checkpoint import CheckpointError, CheckpointSet

CONFIG = NatConfig(max_flows=64, expiration_time=60_000_000, start_port=1000)


def warm_chain(spec=None, flows=8):
    """A launched chain carrying ``flows`` established NAT mappings."""
    chain = launch_chain(spec or default_chain_spec(max_flows=64))
    mappings = {}
    for i in range(flows):
        chain.inject(
            0, make_udp_packet("10.0.0.1", "203.0.113.9", 1024 + i, 2000 + i), 10
        )
    chain.main_loop_burst(10)
    for port, _ts, pkt in chain.collect():
        assert port == 1
        mappings[pkt.l4.dst_port] = pkt.l4.src_port
    assert len(mappings) == flows
    return chain, mappings


def observed_mappings(chain, flows=8, now=50):
    for i in range(flows):
        chain.inject(
            0, make_udp_packet("10.0.0.1", "203.0.113.9", 1024 + i, 2000 + i), now
        )
    chain.main_loop_burst(now)
    return {
        pkt.l4.dst_port: pkt.l4.src_port
        for port, _ts, pkt in chain.collect()
        if port == 1
    }


class TestChainCheckpoint:
    def test_one_frame_per_stage_in_order(self):
        chain, _ = warm_chain()
        try:
            snapshot = chain.checkpoint(20)
            assert snapshot.workers == 3
            names = [frame.nf for frame in snapshot.checkpoints]
            assert names == ["verified-firewall", "verified-limiter", "verified-nat"]
        finally:
            chain.stop()

    def test_set_serializes_on_the_standard_format(self):
        chain, _ = warm_chain()
        try:
            snapshot = chain.checkpoint(20)
            wire = snapshot.to_bytes()
            assert wire.startswith(b"repro-ckpt-set/v1\n")
            revived = CheckpointSet.from_bytes(wire)
            assert revived.workers == 3
        finally:
            chain.stop()

    def test_restore_into_fresh_chain_preserves_mappings(self):
        chain, mappings = warm_chain()
        snapshot = chain.checkpoint(20)
        chain.stop()

        revived = launch_chain(default_chain_spec(max_flows=64))
        try:
            revived.restore(snapshot)
            assert observed_mappings(revived) == mappings
        finally:
            revived.stop()

    def test_restore_preserves_mappings_in_process_mode(self):
        spec = default_chain_spec(execution=PROCESS, max_flows=64)
        chain, mappings = warm_chain(spec)
        snapshot = chain.checkpoint(20)
        chain.stop()

        revived = launch_chain(spec)
        try:
            revived.restore(snapshot)
            assert observed_mappings(revived) == mappings
        finally:
            revived.stop()

    def test_restore_rejects_wrong_stage_count(self):
        chain, _ = warm_chain()
        try:
            snapshot = chain.checkpoint(20)
            short = CheckpointSet(
                taken_at_us=20, checkpoints=snapshot.checkpoints[:2]
            )
            with pytest.raises(CheckpointError, match="stage"):
                chain.restore(short)
        finally:
            chain.stop()

    def test_restore_is_all_or_nothing(self):
        # A set whose frames are stage-swapped fails per-NF validation
        # (nf name mismatch) — and the running chain keeps serving its
        # existing mappings untouched.
        chain, mappings = warm_chain()
        try:
            snapshot = chain.checkpoint(20)
            frames = snapshot.checkpoints
            scrambled = CheckpointSet(
                taken_at_us=20,
                checkpoints=(frames[2], frames[1], frames[0]),
            )
            with pytest.raises(CheckpointError):
                chain.restore(scrambled)
            assert observed_mappings(chain) == mappings
        finally:
            chain.stop()

    def test_checkpoint_refuses_while_a_stage_is_down(self):
        chain, _ = warm_chain()
        try:
            chain.fail_stage(1)
            with pytest.raises(CheckpointError, match="down"):
                chain.checkpoint(30)
        finally:
            chain.stop()


class TestStagePromotion:
    def test_failed_stage_blackholes_traffic(self):
        chain, _ = warm_chain()
        try:
            chain.fail_stage(2)
            assert observed_mappings(chain) == {}
            assert chain.drop_causes()["chain_stage_killed"] == 8
        finally:
            chain.stop()

    def test_swap_from_sync_restores_the_stage_state(self):
        chain, mappings = warm_chain()
        try:
            sync = chain.checkpoint_stage(2, now_us=20)
            assert sync.workers == 1
            chain.fail_stage(2)
            chain.swap_stage(2, sync)
            assert observed_mappings(chain) == mappings
            assert chain.op_counters()["promotions"] == 1
        finally:
            chain.stop()

    def test_cold_swap_loses_state_but_serves(self):
        chain, mappings = warm_chain()
        try:
            chain.fail_stage(2)
            chain.swap_stage(2)  # no sync: a cold standby
            assert chain.engines[2].flow_count() == 0  # mappings are gone
            after = observed_mappings(chain)
            assert len(after) == 8  # traffic re-establishes flows
        finally:
            chain.stop()

    def test_swap_rejects_multi_stage_set(self):
        chain, _ = warm_chain()
        try:
            snapshot = chain.checkpoint(20)
            with pytest.raises(CheckpointError, match="single-stage"):
                chain.swap_stage(2, snapshot)
        finally:
            chain.stop()

    def test_swap_validates_before_installing(self):
        # Promoting with the wrong stage's frame must fail and leave
        # the (down) slot down rather than installing a half-built
        # engine.
        chain, _ = warm_chain()
        try:
            wrong = chain.checkpoint_stage(0, now_us=20)  # firewall frame
            chain.fail_stage(2)
            with pytest.raises(CheckpointError):
                chain.swap_stage(2, wrong)
            assert observed_mappings(chain) == {}
        finally:
            chain.stop()


class TestMixedStageChains:
    def test_noop_stage_checkpoints_too(self):
        stages = (
            ChainStage("noop", lambda _cfg: NoopForwarder()),
            ChainStage("nat", lambda cfg: VigNat(cfg), CONFIG),
        )
        chain, mappings = warm_chain(ChainSpec(stages=stages))
        snapshot = chain.checkpoint(20)
        chain.stop()
        assert snapshot.workers == 2

        revived = launch_chain(ChainSpec(stages=stages))
        try:
            revived.restore(snapshot)
            assert observed_mappings(revived) == mappings
        finally:
            revived.stop()
