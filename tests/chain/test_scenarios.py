"""The operational scenario suite: measured loss/disruption vs. SLAs."""

import pytest

from repro.chain import (
    ScenarioSla,
    chain_breaches,
    chain_scenarios,
    chaos_soak,
    default_chain_spec,
    promote_stage,
    scenario_breaches,
    warm_upgrade,
)

FLOWS = 12
ROUNDS = 12


@pytest.fixture(scope="module")
def spec():
    return default_chain_spec(max_flows=64)


class TestWarmUpgrade:
    def test_meets_default_sla(self, spec):
        report = warm_upgrade(spec, flows=FLOWS, rounds=ROUNDS)
        assert scenario_breaches(report) == []
        # Exactly one round rides the retired chain into the void.
        assert report.lost == FLOWS
        assert report.disruption_us == 1_000
        assert report.flows_lost == 0
        assert report.probe_lost == 0
        assert report.action_wall_us > 0
        assert report.details["checkpoint_stages"] == 3

    def test_breach_detection(self, spec):
        # A zero-loss SLA is unmeetable for an upgrade that abandons an
        # in-flight round: the report must say so rather than pass.
        perfection = ScenarioSla(min_availability=1.0, max_disruption_us=0)
        report = warm_upgrade(spec, flows=FLOWS, rounds=ROUNDS, sla=perfection)
        breaches = scenario_breaches(report)
        assert len(breaches) == 2
        assert any("availability" in b for b in breaches)
        assert any("disruption" in b for b in breaches)
        assert not report.sla_ok

    def test_record_shape(self, spec):
        record = warm_upgrade(spec, flows=FLOWS, rounds=ROUNDS).to_record()
        assert record["nf"] == "chain"
        assert record["scenario"] == "warm-upgrade"
        assert record["sla_ok"] is True
        assert record["offered"] == FLOWS * ROUNDS
        assert 0.0 < record["availability"] <= 1.0
        assert record["sla"]["max_flows_lost"] == 0


class TestPromoteStage:
    def test_measured_disruption_matches_down_window(self, spec):
        report = promote_stage(spec, flows=FLOWS, rounds=ROUNDS, down_rounds=2)
        assert scenario_breaches(report) == []
        # The disruption window is measured from lossy rounds, and the
        # stage was down for exactly two of them.
        assert report.lost == 2 * FLOWS
        assert report.disruption_us == 2_000
        assert report.flows_lost == 0  # the sync carried every mapping
        assert report.details["stage"] == "nat"

    def test_promoting_an_earlier_stage(self, spec):
        report = promote_stage(
            spec, stage_index=0, flows=FLOWS, rounds=ROUNDS, down_rounds=1
        )
        assert report.details["stage"] == "firewall"
        assert report.lost == FLOWS
        assert report.flows_lost == 0


class TestChaosSoak:
    def test_probe_rounds_after_the_storm_are_clean(self, spec):
        report = chaos_soak(spec, flows=FLOWS, rounds=15, seed=99)
        assert scenario_breaches(report) == []
        assert report.probe_lost == 0
        assert report.flows_lost == 0  # chaos eats packets, never state
        applied = report.details["faults_applied"]
        assert applied.get("reorder", 0) > 0

    def test_loss_is_confined_to_the_window(self, spec):
        report = chaos_soak(spec, flows=FLOWS, rounds=15, seed=99)
        window_start, window_end = report.details["window_us"]
        assert report.disruption_us <= window_end - window_start + 1_000


class TestSuite:
    def test_full_suite_passes_and_gates(self, spec):
        reports = chain_scenarios(spec, flows=FLOWS, rounds=ROUNDS)
        assert [r.scenario for r in reports] == [
            "warm-upgrade",
            "promote-stage",
            "chaos-soak",
        ]
        assert chain_breaches(reports) == []

    def test_sla_validation(self):
        with pytest.raises(ValueError):
            ScenarioSla(min_availability=1.5, max_disruption_us=0)
        with pytest.raises(ValueError):
            ScenarioSla(min_availability=0.9, max_disruption_us=-1)
