"""ChainSpec/ChainStage validation and the ChainRuntime protocol surface."""

import pytest

from repro.chain import (
    ChainRuntime,
    ChainSpec,
    ChainStage,
    default_chain_spec,
    launch_chain,
)
from repro.nat.config import NatConfig
from repro.nat.noop import NoopForwarder
from repro.nat.vignat import VigNat
from repro.net.app import INLINE, PROCESS
from repro.obs import flight
from repro.obs.expo import sample_value
from repro.packets.builder import make_udp_packet


def noop_stage(name="noop", device_a=0, device_b=1):
    return ChainStage(
        name,
        lambda _cfg, a=device_a, b=device_b: NoopForwarder(a, b),
        device_a=device_a,
        device_b=device_b,
    )


def nat_stage(name="nat"):
    config = NatConfig(max_flows=64, expiration_time=60_000_000, start_port=1000)
    return ChainStage(name, lambda cfg: VigNat(cfg), config)


class TestStageValidation:
    def test_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            ChainStage("", lambda _cfg: NoopForwarder())

    def test_requires_callable_factory(self):
        with pytest.raises(ValueError, match="callable"):
            ChainStage("s", "not-a-factory")

    def test_devices_must_differ(self):
        with pytest.raises(ValueError, match="differ"):
            ChainStage("s", lambda _cfg: NoopForwarder(), device_a=1, device_b=1)

    def test_devices_must_be_nonnegative(self):
        with pytest.raises(ValueError, match=">= 0"):
            ChainStage("s", lambda _cfg: NoopForwarder(), device_a=-1)


class TestSpecValidation:
    def test_needs_a_stage(self):
        with pytest.raises(ValueError, match="at least one stage"):
            ChainSpec(stages=())

    def test_stage_names_unique(self):
        with pytest.raises(ValueError, match="unique"):
            ChainSpec(stages=(noop_stage("a"), noop_stage("a")))

    def test_unknown_execution(self):
        with pytest.raises(ValueError, match="execution"):
            ChainSpec(stages=(noop_stage(),), execution="quantum")

    def test_threaded_execution_rejected(self):
        # Chains compose single-worker engines; the sharded thread
        # runtime is not a chain execution mode.
        with pytest.raises(ValueError, match="execution"):
            ChainSpec(stages=(noop_stage(),), execution="threaded-deterministic")

    def test_fastpath_tri_state_normalized(self):
        assert ChainSpec(stages=(noop_stage(),)).fastpath == "off"
        assert ChainSpec(stages=(noop_stage(),), fastpath=True).fastpath == "cache"
        spec = ChainSpec(stages=(noop_stage(),), fastpath="compiled")
        assert spec.fastpath == "compiled"

    def test_bad_sizes(self):
        for field, value in [
            ("burst_size", 0),
            ("rx_capacity", 0),
            ("pool_size", -1),
            ("truth_log_capacity", 0),
            ("turn_timeout_s", 0),
        ]:
            with pytest.raises(ValueError):
                ChainSpec(stages=(noop_stage(),), **{field: value})

    def test_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            ChainSpec(stages=(noop_stage(),), transport="carrier-pigeon")

    def test_with_varies_a_copy(self):
        spec = ChainSpec(stages=(noop_stage(),))
        varied = spec.with_(execution=PROCESS, fastpath="cache")
        assert spec.execution == INLINE and spec.fastpath == "off"
        assert varied.execution == PROCESS and varied.fastpath == "cache"
        assert varied.stages == spec.stages

    def test_stages_coerced_to_tuple(self):
        spec = ChainSpec(stages=[noop_stage()])
        assert isinstance(spec.stages, tuple)


class TestChainRuntime:
    def test_launch_chain_builds_runtime(self):
        chain = launch_chain(ChainSpec(stages=(noop_stage(), nat_stage())))
        try:
            assert isinstance(chain, ChainRuntime)
            assert chain.workers == 2
            assert chain.stage_names() == ["noop", "nat"]
        finally:
            chain.stop()

    def test_forward_and_reply_traverse_the_chain(self):
        chain = launch_chain(default_chain_spec(max_flows=64))
        try:
            out = make_udp_packet("10.0.0.1", "203.0.113.9", 1024, 2000)
            assert chain.inject(0, out, 10)
            chain.main_loop_burst(10)
            exits = chain.collect()
            assert [port for port, _, _ in exits] == [1]
            translated = exits[0][2]
            # The NAT stage rewrote the source; the firewall/limiter
            # stages forwarded the same bytes through.
            assert translated.l4.src_port >= 1000
            assert translated.l4.dst_port == 2000

            reply = make_udp_packet(
                "203.0.113.9",
                "192.0.2.1",
                2000,
                translated.l4.src_port,
                device=1,
            )
            assert chain.inject(1, reply, 20)
            chain.main_loop_burst(20)
            exits = chain.collect()
            assert [port for port, _, _ in exits] == [0]
            assert exits[0][2].l4.dst_port == 1024
        finally:
            chain.stop()

    def test_reply_completes_within_one_turn(self):
        # The descending sweep carries leftward traffic the whole way
        # back inside the same main_loop_burst call.
        chain = launch_chain(default_chain_spec(max_flows=64))
        try:
            chain.inject(0, make_udp_packet("10.0.0.1", "203.0.113.9", 1, 2000), 10)
            chain.main_loop_burst(10)
            (_, _, translated), = chain.collect()
            chain.inject(
                1,
                make_udp_packet(
                    "203.0.113.9", "192.0.2.1", 2000, translated.l4.src_port, device=1
                ),
                20,
            )
            assert chain.main_loop_burst(20) > 0
            assert len(chain.collect()) == 1
        finally:
            chain.stop()

    def test_bad_port_rejected(self):
        chain = launch_chain(ChainSpec(stages=(noop_stage(),)))
        try:
            with pytest.raises(ValueError, match="ports are 0 and 1"):
                chain.inject(2, make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2), 0)
        finally:
            chain.stop()

    def test_op_and_stage_counters(self):
        chain = launch_chain(default_chain_spec(max_flows=64))
        try:
            for i in range(5):
                chain.inject(
                    0, make_udp_packet("10.0.0.1", "203.0.113.9", 1024, 2000 + i), 10
                )
            chain.main_loop_burst(10)
            chain.collect()
            ops = chain.op_counters()
            assert ops["injected"] == 5
            assert ops["exited"] == 5
            # Two handoffs per packet in a three-stage chain.
            assert ops["handoffs"] == 10
            assert ops["misroutes"] == 0
            per_stage = chain.per_stage_counters()
            assert len(per_stage) == 3
            assert all(stage["forwarded"] == 5 for stage in per_stage)
            assert chain.flow_count() >= 5  # the NAT's table
        finally:
            chain.stop()

    def test_truth_logs_record_every_stage_hop(self):
        spec = ChainSpec(stages=(noop_stage("a"), noop_stage("b")))
        chain = launch_chain(spec)
        try:
            chain.inject(0, make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2), 5)
            chain.main_loop_burst(5)
            for index in range(2):
                stages = [e.stage for e in chain.stage_truth(index).last()]
                assert stages == [flight.RX, flight.TX]
                assert all(e.worker == index for e in chain.stage_truth(index).last())
        finally:
            chain.stop()

    def test_truth_log_is_bounded(self):
        spec = ChainSpec(stages=(noop_stage(),), truth_log_capacity=4)
        chain = launch_chain(spec)
        try:
            for i in range(8):
                chain.inject(0, make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2), i)
            chain.main_loop_burst(10)
            log = chain.stage_truth(0)
            assert len(log.last()) == 4
            assert log.recorded_total == 16  # 8 rx + 8 tx
        finally:
            chain.stop()

    def test_misroute_is_dropped_counted_and_logged(self):
        # A stage whose declared devices disagree with where its NF
        # actually emits: the noop forwards 0<->1 but the stage claims
        # its outward side is device 3.
        stage = ChainStage(
            "lost", lambda _cfg: NoopForwarder(0, 1), device_a=0, device_b=3
        )
        chain = launch_chain(ChainSpec(stages=(stage,)))
        try:
            chain.inject(0, make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2), 5)
            chain.main_loop_burst(5)
            assert chain.collect() == []
            assert chain.op_counters()["misroutes"] == 1
            assert chain.drop_causes()["chain_misroute"] == 1
            drops = [
                e
                for e in chain.stage_truth(0).last()
                if e.stage == flight.DROP
            ]
            assert len(drops) == 1
            assert drops[0].reason == flight.REASON_CHAIN_MISROUTE
        finally:
            chain.stop()

    def test_snapshot_metrics_carries_stage_labels(self):
        chain = launch_chain(default_chain_spec(max_flows=64))
        try:
            chain.inject(0, make_udp_packet("10.0.0.1", "203.0.113.9", 1, 2000), 10)
            chain.main_loop_burst(10)
            chain.collect()
            snapshot = chain.snapshot_metrics()
            names = {metric["name"] for metric in snapshot["metrics"]}
            assert {
                "chain_stage_rx_total",
                "chain_stage_tx_total",
                "chain_stage_misroute_total",
                "chain_stage_flows",
                "chain_handoffs_total",
                "chain_exited_total",
            } <= names
            for index, name in enumerate(chain.stage_names()):
                labels = {"stage": str(index), "stage_name": name}
                assert sample_value(snapshot, "chain_stage_rx_total", labels) == 1
                assert sample_value(snapshot, "chain_stage_tx_total", labels) == 1
            assert (
                sample_value(
                    snapshot,
                    "chain_stage_flows",
                    {"stage": "2", "stage_name": "nat"},
                )
                == 1
            )
        finally:
            chain.stop()

    def test_hookless_stages_run_fastpath_off(self):
        # The firewall/limiter publish no fast-path hooks; a chain-wide
        # fastpath setting must quietly not wrap them (FastPathNat
        # would refuse) while still accelerating the NAT stage.
        spec = default_chain_spec(fastpath="cache", max_flows=64)
        chain = launch_chain(spec)
        try:
            assert chain._stage_fastpath == ["off", "off", "cache"]
        finally:
            chain.stop()


class TestProcessExecution:
    def test_process_chain_round_trip(self):
        chain = launch_chain(default_chain_spec(execution=PROCESS, max_flows=64))
        try:
            chain.inject(0, make_udp_packet("10.0.0.1", "203.0.113.9", 1024, 2000), 10)
            chain.main_loop_burst(10)
            exits = chain.collect()
            assert [port for port, _, _ in exits] == [1]
            assert exits[0][2].l4.dst_port == 2000
        finally:
            chain.stop()
