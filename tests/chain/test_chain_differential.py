"""The chain differential grid: a launched chain must be byte-identical
to manually piping the same NFs stage by stage, across every fastpath
mode and both execution modes — composition adds no semantics."""

import pytest

from repro.chain import ChainSpec, ChainStage, launch_chain
from repro.nat.config import NatConfig
from repro.nat.firewall import VigFirewall
from repro.nat.noop import NoopForwarder
from repro.nat.vignat import VigNat
from repro.net.app import INLINE, PROCESS
from repro.obs.flight import first_divergence
from repro.packets.builder import make_udp_packet

CONFIG = NatConfig(max_flows=64, expiration_time=60_000_000, start_port=1000)

GRID = [
    (fastpath, execution)
    for fastpath in ("off", "cache", "compiled")
    for execution in (INLINE, PROCESS)
]


def chain_spec(fastpath, execution):
    stages = (
        ChainStage("firewall", lambda cfg: VigFirewall(cfg), CONFIG),
        ChainStage("noop", lambda _cfg: NoopForwarder()),
        ChainStage("nat", lambda cfg: VigNat(cfg), CONFIG),
    )
    return ChainSpec(stages=stages, fastpath=fastpath, execution=execution)


def fresh_nfs():
    return [VigFirewall(CONFIG), NoopForwarder(), VigNat(CONFIG)]


DEVICES = [(0, 1), (0, 1), (0, 1)]  # (device_a, device_b) per stage


def manual_pipe(nfs, port_id, packet, now):
    """Thread one packet through bare NFs with the chain's remap rules,
    written out independently here as the reference semantics."""
    outputs = []
    last = len(nfs) - 1
    if port_id == 0:
        work = [(0, DEVICES[0][0], packet)]
    else:
        work = [(last, DEVICES[last][1], packet)]
    while work:
        index, device, pkt = work.pop(0)
        pkt.device = device
        for out in nfs[index].process(pkt, now):
            if out.device == DEVICES[index][1]:
                if index == last:
                    outputs.append((out.to_bytes(), 1))
                else:
                    work.append((index + 1, DEVICES[index + 1][0], out))
            elif out.device == DEVICES[index][0]:
                if index == 0:
                    outputs.append((out.to_bytes(), 0))
                else:
                    work.append((index - 1, DEVICES[index - 1][1], out))
    return outputs


def traffic_script():
    """(entry port, packet builder) steps; replies are built lazily from
    the mapping the reference path observed, so both sides see the same
    bytes and any mapping skew shows up as a divergence."""
    steps = []
    for i in range(6):
        steps.append(
            (
                0,
                lambda i=i: make_udp_packet(
                    f"10.0.0.{i % 3 + 1}", "203.0.113.9", 1024 + i, 2000 + i
                ),
            )
        )
    return steps


@pytest.mark.parametrize("fastpath,execution", GRID)
def test_chain_matches_manual_pipe(fastpath, execution):
    chain = launch_chain(chain_spec(fastpath, execution))
    nfs = fresh_nfs()
    expected, actual = [], []
    try:
        now = 1_000
        forward_exits = []
        for port_id, build in traffic_script():
            want = manual_pipe(nfs, port_id, build(), now)
            expected.append(want)
            forward_exits.extend(wire for wire, port in want if port == 1)

            assert chain.inject(port_id, build(), now)
            chain.main_loop_burst(now)
            actual.append(
                [(pkt.to_bytes(), port) for port, _ts, pkt in chain.collect()]
            )
            now += 1_000

        # Replies to every translated exit observed on the reference
        # path — they traverse the chain right-to-left.
        for wire in forward_exits:
            ext_port = int.from_bytes(wire[34:36], "big")  # UDP src port
            flow_port = int.from_bytes(wire[36:38], "big")  # UDP dst port

            def build(s=flow_port, d=ext_port):
                return make_udp_packet(
                    "203.0.113.9", "192.0.2.1", s, d, device=1
                )
            expected.append(manual_pipe(nfs, 1, build(), now))
            assert chain.inject(1, build(), now)
            chain.main_loop_burst(now)
            actual.append(
                [(pkt.to_bytes(), port) for port, _ts, pkt in chain.collect()]
            )
            now += 1_000

        # A packet the firewall must drop (unsolicited external).
        def build():
            return make_udp_packet(
                "203.0.113.9", "192.0.2.1", 9999, 40_000, device=1
            )
        expected.append(manual_pipe(nfs, 1, build(), now))
        assert chain.inject(1, build(), now)
        chain.main_loop_burst(now)
        actual.append(
            [(pkt.to_bytes(), port) for port, _ts, pkt in chain.collect()]
        )

        diff = first_divergence(expected, actual)
        assert diff is None, diff.render()
        # The scenario is not vacuous: traffic crossed in both
        # directions and the firewall dropped the unsolicited probe.
        assert len(forward_exits) == 6
        assert expected[-1] == []
    finally:
        chain.stop()
