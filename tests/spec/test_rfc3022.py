"""The executable specification: every branch of the Fig. 6 decision tree."""

import pytest

from repro.spec.rfc3022 import (
    EXTERNAL,
    INTERNAL,
    NatSpec,
    PortUnavailable,
    SpecPacket,
    lowest_free_port,
    spec_packet_of,
)
from repro.spec.state import AbstractFlowEntry, AbstractNatState

EXT_IP = 0xC0000201


def make_spec(capacity=4, texp=2_000_000):
    return NatSpec(external_ip=EXT_IP, capacity=capacity, expiration_time=texp, start_port=1000)


def out_packet(sport=4000, src=0x0A000001):
    return SpecPacket(
        iface=INTERNAL, src_ip=src, src_port=sport,
        dst_ip=0x08080808, dst_port=53, protocol=17,
    )


def in_packet(dport, src=0x08080808, sport=53):
    return SpecPacket(
        iface=EXTERNAL, src_ip=src, src_port=sport,
        dst_ip=EXT_IP, dst_port=dport, protocol=17,
    )


class TestDecisionTree:
    def test_internal_new_flow_created_and_forwarded(self):
        spec = make_spec()
        result = spec.step(spec.initial_state(), out_packet(), 1_000)
        assert result.case == "created/forward"
        assert result.sent.iface == EXTERNAL
        assert result.sent.src_ip == EXT_IP
        assert result.state.size() == 1

    def test_internal_existing_flow_forwarded(self):
        spec = make_spec()
        state = spec.step(spec.initial_state(), out_packet(), 1_000).state
        result = spec.step(state, out_packet(), 2_000)
        assert result.case == "existing/forward"
        assert result.state.size() == 1

    def test_external_match_forwarded_to_internal(self):
        spec = make_spec()
        first = spec.step(spec.initial_state(), out_packet(sport=4242), 1_000)
        port = first.sent.src_port
        result = spec.step(first.state, in_packet(port), 2_000)
        assert result.case == "existing/forward"
        assert result.sent.iface == INTERNAL
        assert result.sent.dst_port == 4242
        assert result.sent.src_ip == 0x08080808  # source untouched

    def test_external_no_match_dropped(self):
        spec = make_spec()
        result = spec.step(spec.initial_state(), in_packet(1000), 1_000)
        assert result.sent is None
        assert result.case == "no-entry/drop"
        assert result.state.size() == 0  # no state created

    def test_table_full_drops_new_internal_flow(self):
        spec = make_spec(capacity=2)
        state = spec.initial_state()
        state = spec.step(state, out_packet(sport=1), 1_000).state
        state = spec.step(state, out_packet(sport=2), 1_000).state
        result = spec.step(state, out_packet(sport=3), 1_000)
        assert result.case == "table-full/drop"
        assert result.state.size() == 2

    def test_expiry_boundary_inclusive(self):
        """Fig. 6 l.7: timestamp + Texp <= t expires the flow."""
        spec = make_spec(texp=1_000)
        state = spec.step(spec.initial_state(), out_packet(), 0).state
        at_boundary = spec.step(state, in_packet(1000), 1_000)
        assert at_boundary.sent is None  # expired exactly at the boundary
        just_before = spec.step(state, in_packet(1000), 999)
        assert just_before.sent is not None

    def test_refresh_resets_expiry(self):
        spec = make_spec(texp=1_000)
        state = spec.step(spec.initial_state(), out_packet(), 0).state
        state = spec.step(state, out_packet(), 900).state  # refresh
        result = spec.step(state, out_packet(), 1_800)
        assert result.case == "existing/forward"

    def test_wrong_remote_endpoint_dropped(self):
        """The matching entry must agree on the remote (ip, port)."""
        spec = make_spec()
        first = spec.step(spec.initial_state(), out_packet(), 1_000)
        port = first.sent.src_port
        stray = in_packet(port, src=0x09090909)
        assert spec.step(first.state, stray, 2_000).sent is None

    def test_wrong_destination_ip_dropped(self):
        spec = make_spec()
        first = spec.step(spec.initial_state(), out_packet(), 1_000)
        packet = SpecPacket(
            iface=EXTERNAL, src_ip=0x08080808, src_port=53,
            dst_ip=0x01020304, dst_port=first.sent.src_port, protocol=17,
        )
        assert spec.step(first.state, packet, 2_000).sent is None

    def test_payload_carried_through(self):
        spec = make_spec()
        packet = SpecPacket(
            iface=INTERNAL, src_ip=1, src_port=2, dst_ip=3, dst_port=4,
            protocol=17, data=b"payload",
        )
        result = spec.step(spec.initial_state(), packet, 1_000)
        assert result.sent.data == b"payload"


class TestPortOracle:
    def test_lowest_free_port(self):
        oracle = lowest_free_port(1000, 1003)
        state = AbstractNatState(
            {out_packet(sport=1).flow_id(): AbstractFlowEntry(1000, 0)}, 4
        )
        assert oracle(state, out_packet()) == 1001

    def test_oracle_exhaustion(self):
        oracle = lowest_free_port(1000, 1000)
        state = AbstractNatState(
            {out_packet(sport=1).flow_id(): AbstractFlowEntry(1000, 0)}, 4
        )
        with pytest.raises(PortUnavailable):
            oracle(state, out_packet())

    def test_illegal_oracle_choice_rejected(self):
        spec = NatSpec(
            external_ip=EXT_IP, capacity=4, expiration_time=1_000,
            port_oracle=lambda state, packet: 99,  # outside [1000, 1003]
            start_port=1000,
        )
        with pytest.raises(PortUnavailable):
            spec.step(spec.initial_state(), out_packet(), 0)

    def test_duplicate_oracle_choice_rejected(self):
        spec = NatSpec(
            external_ip=EXT_IP, capacity=4, expiration_time=10_000,
            port_oracle=lambda state, packet: 1000,
            start_port=1000,
        )
        state = spec.step(spec.initial_state(), out_packet(sport=1), 0).state
        with pytest.raises(PortUnavailable):
            spec.step(state, out_packet(sport=2), 1)


class TestAbstractState:
    def test_expire(self):
        state = AbstractNatState(
            {
                out_packet(sport=1).flow_id(): AbstractFlowEntry(1000, 0),
                out_packet(sport=2).flow_id(): AbstractFlowEntry(1001, 500),
            },
            4,
        )
        survived = state.expire(now=1_000, expiration_time=1_000)
        assert survived.size() == 1

    def test_allocated_ports(self):
        state = AbstractNatState(
            {out_packet(sport=1).flow_id(): AbstractFlowEntry(1007, 0)}, 4
        )
        assert state.allocated_ports() == frozenset({1007})

    def test_flow_of_external_port(self):
        fid = out_packet(sport=5).flow_id()
        state = AbstractNatState({fid: AbstractFlowEntry(1002, 0)}, 4)
        assert state.flow_of_external_port(1002) == fid
        assert state.flow_of_external_port(1003) is None


class TestSpecPacketOf:
    def test_lifts_concrete_packet(self):
        from repro.packets.builder import make_udp_packet

        packet = make_udp_packet("10.0.0.1", "8.8.8.8", 1234, 53, device=0)
        spec_pkt = spec_packet_of(packet, internal_device=0)
        assert spec_pkt.iface == INTERNAL
        assert spec_pkt.src_port == 1234

    def test_external_device_marked(self):
        from repro.packets.builder import make_udp_packet

        packet = make_udp_packet("8.8.8.8", "10.0.0.1", 53, 1234, device=1)
        assert spec_packet_of(packet, internal_device=0).iface == EXTERNAL

    def test_requires_flow_packet(self):
        from repro.packets.headers import EthernetHeader, Packet

        with pytest.raises(ValueError):
            spec_packet_of(Packet(eth=EthernetHeader()), 0)
