"""The metrics registry: instruments, label families, snapshot merging."""

import pytest

from repro.obs.histogram import LatencyHistogram
from repro.obs.registry import (
    MERGE_MAX,
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    NullRegistry,
    merge_snapshots,
)


def test_counter_basics():
    registry = MetricsRegistry()
    counter = registry.counter("requests_total", "help")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_same_name_same_labels_shares_instrument():
    registry = MetricsRegistry()
    a = registry.counter("x_total", labels={"nf": "nat"})
    b = registry.counter("x_total", labels={"nf": "nat"})
    assert a is b
    c = registry.counter("x_total", labels={"nf": "noop"})
    assert c is not a


def test_label_order_is_irrelevant():
    registry = MetricsRegistry()
    a = registry.gauge("g", labels={"a": "1", "b": "2"})
    b = registry.gauge("g", labels={"b": "2", "a": "1"})
    assert a is b


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("busy")
    with pytest.raises(ValueError):
        registry.gauge("busy")


def test_callback_reregistration_raises():
    registry = MetricsRegistry()
    registry.counter_fn("cb_total", lambda: 1)
    with pytest.raises(ValueError):
        registry.counter_fn("cb_total", lambda: 2)


def test_callbacks_read_live_values():
    registry = MetricsRegistry()
    state = {"drops": 0}
    registry.counter_fn("drops_total", lambda: state["drops"])
    assert registry.snapshot()["metrics"][0]["samples"][0]["value"] == 0
    state["drops"] = 7
    assert registry.snapshot()["metrics"][0]["samples"][0]["value"] == 7


def test_snapshot_shape_and_ordering():
    registry = MetricsRegistry()
    registry.counter("z_total", "last").inc()
    registry.gauge("a_gauge", "first", merge=MERGE_MAX).set(3)
    hist = registry.histogram("lat_ns", "latency")
    hist.observe_many([1, 2, 1000])
    snapshot = registry.snapshot()
    assert snapshot["schema"] == SNAPSHOT_SCHEMA
    names = [m["name"] for m in snapshot["metrics"]]
    assert names == sorted(names)
    by_name = {m["name"]: m for m in snapshot["metrics"]}
    assert by_name["a_gauge"]["merge"] == "max"
    histogram = by_name["lat_ns"]["samples"][0]["histogram"]
    assert histogram["count"] == 3
    assert LatencyHistogram.from_dict(histogram).count == 3


def test_merge_snapshots_sums_counters_and_maxes_watermarks():
    def worker_snapshot(drops, high_water):
        registry = MetricsRegistry()
        registry.counter("drops_total").inc(drops)
        registry.gauge("pool_high_water", merge=MERGE_MAX).set(high_water)
        return registry.snapshot()

    merged = merge_snapshots([worker_snapshot(3, 10), worker_snapshot(4, 7)])
    by_name = {m["name"]: m for m in merged["metrics"]}
    assert by_name["drops_total"]["samples"][0]["value"] == 7
    assert by_name["pool_high_water"]["samples"][0]["value"] == 10


def test_merge_snapshots_keeps_distinct_labels_apart():
    def labeled(worker, value):
        registry = MetricsRegistry()
        registry.counter("x_total", labels={"worker": worker}).inc(value)
        return registry.snapshot()

    merged = merge_snapshots([labeled("0", 1), labeled("1", 2)])
    samples = merged["metrics"][0]["samples"]
    assert [(s["labels"]["worker"], s["value"]) for s in samples] == [
        ("0", 1),
        ("1", 2),
    ]


def test_merge_snapshots_merges_histograms_exactly():
    def with_samples(samples):
        registry = MetricsRegistry()
        registry.histogram("lat").observe_many(samples)
        return registry.snapshot()

    merged = merge_snapshots([with_samples([1, 2]), with_samples([1000])])
    histogram = merged["metrics"][0]["samples"][0]["histogram"]
    assert LatencyHistogram.from_dict(histogram) == LatencyHistogram.of(
        [1, 2, 1000]
    )


def test_null_registry_is_inert():
    registry = NullRegistry()
    registry.counter("a").inc(100)
    registry.gauge("b").set(5)
    registry.histogram("c").observe(1)
    registry.counter_fn("d", lambda: 1)
    assert registry.snapshot()["metrics"] == []


class TestWithLabels:
    """Stamping identity labels at the source (repro.net.procrun's
    per-worker snapshots) so merges cannot silently sum gauges."""

    def _unlabeled(self, occupancy):
        registry = MetricsRegistry()
        registry.gauge("flow_table_occupancy", "live flows").set(occupancy)
        registry.counter("packets_total", "served").inc(10)
        return registry.snapshot()

    def test_stamps_every_sample(self):
        from repro.obs.registry import with_labels

        stamped = with_labels(self._unlabeled(5), {"worker": "2"})
        for metric in stamped["metrics"]:
            for sample in metric["samples"]:
                assert sample["labels"]["worker"] == "2"

    def test_original_snapshot_untouched(self):
        from repro.obs.registry import with_labels

        original = self._unlabeled(5)
        with_labels(original, {"worker": "2"})
        for metric in original["metrics"]:
            for sample in metric["samples"]:
                assert "worker" not in sample["labels"]

    def test_colliding_unlabeled_gauges_would_sum(self):
        """The failure mode the stamp exists for: two workers' identical
        unlabeled snapshots merge into one summed gauge sample —
        5 flows + 7 flows reads as a 12-flow table that exists nowhere."""
        merged = merge_snapshots([self._unlabeled(5), self._unlabeled(7)])
        by_name = {m["name"]: m for m in merged["metrics"]}
        samples = by_name["flow_table_occupancy"]["samples"]
        assert len(samples) == 1
        assert samples[0]["value"] == 12  # the lie

    def test_stamped_gauges_stay_apart(self):
        from repro.obs.registry import with_labels

        merged = merge_snapshots(
            [
                with_labels(self._unlabeled(5), {"worker": "0"}),
                with_labels(self._unlabeled(7), {"worker": "1"}),
            ]
        )
        by_name = {m["name"]: m for m in merged["metrics"]}
        samples = by_name["flow_table_occupancy"]["samples"]
        values = {
            s["labels"]["worker"]: s["value"] for s in samples
        }
        assert values == {"0": 5, "1": 7}
        # Counters also stay attributable per worker.
        packet_samples = by_name["packets_total"]["samples"]
        assert len(packet_samples) == 2

    def test_conflicting_existing_label_raises(self):
        from repro.obs.registry import with_labels

        registry = MetricsRegistry()
        registry.counter(
            "packets_total", "served", labels={"worker": "3"}
        ).inc(1)
        snapshot = registry.snapshot()
        with pytest.raises(ValueError, match="worker"):
            with_labels(snapshot, {"worker": "4"})
        # Stamping the same value is a no-op, not a conflict.
        again = with_labels(snapshot, {"worker": "3"})
        assert again["metrics"][0]["samples"][0]["labels"]["worker"] == "3"

    def test_non_string_label_values_raise(self):
        from repro.obs.registry import with_labels

        with pytest.raises(ValueError):
            with_labels(self._unlabeled(1), {"worker": 2})
