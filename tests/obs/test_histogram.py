"""The log2 latency histogram: exact merging, monotone percentiles."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.histogram import LatencyHistogram

values = st.lists(st.integers(min_value=0, max_value=2**40), max_size=200)


def test_empty_histogram():
    hist = LatencyHistogram()
    assert hist.count == 0
    assert math.isnan(hist.mean())
    assert math.isnan(hist.p50())


def test_record_and_count():
    hist = LatencyHistogram.of([1, 2, 3, 1000])
    assert hist.count == 4
    assert hist.min_value == 1
    assert hist.max_value == 1000
    assert hist.mean() == (1 + 2 + 3 + 1000) / 4


def test_bucket_bounds_cover_value():
    """Every recorded value sits within its bucket's (lo, hi] range."""
    hist = LatencyHistogram()
    for value in (0, 1, 2, 3, 4, 7, 8, 1023, 1024, 2**40):
        hist = LatencyHistogram.of([value])
        index = next(i for i, c in enumerate(hist.counts) if c)
        upper = hist.bucket_upper_bound(index)
        lower = hist.bucket_upper_bound(index - 1) if index else -1
        assert lower < value <= upper, (value, index)


@given(values, values)
def test_merge_commutes(a, b):
    ha, hb = LatencyHistogram.of(a), LatencyHistogram.of(b)
    assert ha.merge(hb) == hb.merge(ha)


@given(values, values, values)
def test_merge_associates(a, b, c):
    ha, hb, hc = (LatencyHistogram.of(x) for x in (a, b, c))
    assert ha.merge(hb).merge(hc) == ha.merge(hb.merge(hc))


@given(values, values)
def test_merge_equals_concatenation(a, b):
    """Merging two histograms is exactly histogramming the union."""
    merged = LatencyHistogram.of(a).merge(LatencyHistogram.of(b))
    assert merged == LatencyHistogram.of(a + b)


@given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1))
def test_percentile_monotone_in_fraction(samples):
    hist = LatencyHistogram.of(samples)
    fractions = (0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0)
    quantiles = [hist.percentile(f) for f in fractions]
    assert quantiles == sorted(quantiles)
    # Percentiles never exceed the max observed nor undershoot a
    # sound lower bound for the smallest sample's bucket.
    assert quantiles[-1] <= hist.max_value
    assert hist.percentile(0.0001) >= 0


@given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1))
def test_percentile_upper_bounds_true_quantile(samples):
    """The histogram p-quantile never underestimates the true one.

    Log2 buckets report the bucket's upper bound (clamped to the max
    observed), so the reported quantile is a sound upper bound of the
    exact sample quantile.
    """
    hist = LatencyHistogram.of(samples)
    ordered = sorted(samples)
    for fraction in (0.5, 0.99):
        rank = max(1, math.ceil(fraction * len(ordered)))
        exact = ordered[rank - 1]
        assert hist.percentile(fraction) >= exact


@given(values)
def test_dict_round_trip(samples):
    hist = LatencyHistogram.of(samples)
    assert LatencyHistogram.from_dict(hist.to_dict()) == hist


def test_merge_all():
    parts = [LatencyHistogram.of([i, i * 10]) for i in range(1, 6)]
    merged = LatencyHistogram.merge_all(parts)
    assert merged.count == 10
    assert merged == LatencyHistogram.of(
        [v for i in range(1, 6) for v in (i, i * 10)]
    )


def test_negative_values_clamp_to_zero():
    hist = LatencyHistogram.of([-5])
    assert hist.count == 1
    assert hist.min_value == 0
