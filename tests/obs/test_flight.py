"""The flight recorder: ring wraparound, anomaly dumps, trace diffs."""

import json

from repro.obs import flight
from repro.obs.flight import (
    AnomalyMonitor,
    FlightRecorder,
    first_divergence,
)
from repro.packets.builder import make_udp_packet
from repro.packets.pcap import read_pcap_file


def test_ring_wraparound_keeps_last_n():
    recorder = FlightRecorder(capacity=4)
    for i in range(10):
        recorder.record(flight.RX, t_us=i)
    assert recorder.recorded_total == 10
    assert len(recorder) == 4
    assert [e.seq for e in recorder.last()] == [6, 7, 8, 9]
    assert [e.t_us for e in recorder.last(2)] == [8, 9]


def test_last_before_wraparound():
    recorder = FlightRecorder(capacity=8)
    recorder.record(flight.RX)
    recorder.record(flight.TX)
    events = recorder.last()
    assert [e.stage for e in events] == [flight.RX, flight.TX]
    assert [e.seq for e in events] == [0, 1]


def test_dump_writes_trace_and_pcap(tmp_path):
    recorder = FlightRecorder(capacity=16)
    wire = make_udp_packet("10.0.0.1", "8.8.8.8", 1234, 53).wire_bytes()
    recorder.record(flight.RX, t_us=5, worker=1)
    recorder.record(
        flight.DROP, t_us=6, worker=1, reason=flight.REASON_NF_DROP, wire=wire
    )
    paths = recorder.dump(tmp_path, "incident", flight.REASON_DROP_SPIKE)

    lines = (tmp_path / "incident.trace.jsonl").read_text().splitlines()
    header = json.loads(lines[0])
    assert header["anomaly"] == flight.REASON_DROP_SPIKE
    assert header["events"] == 2
    events = [json.loads(line) for line in lines[1:]]
    assert [e["stage"] for e in events] == [flight.RX, flight.DROP]
    assert events[1]["reason"] == flight.REASON_NF_DROP
    assert events[1]["wire_len"] == len(wire)

    frames = read_pcap_file(paths["pcap"])
    assert len(frames) == 1
    assert frames[0].data == wire
    assert frames[0].timestamp_us == 6
    assert recorder.dumps == 1


def test_dump_without_wire_events_skips_pcap(tmp_path):
    recorder = FlightRecorder(capacity=4)
    recorder.record(flight.TX)
    paths = recorder.dump(tmp_path, "plain", flight.REASON_DROP_SPIKE)
    assert "pcap" not in paths
    assert not (tmp_path / "plain.pcap").exists()


def test_anomaly_monitor_fires_each_class_once(tmp_path):
    recorder = FlightRecorder(capacity=8)
    recorder.record(flight.RX)
    monitor = AnomalyMonitor(recorder, tmp_path, drop_spike_threshold=10)

    assert monitor.observe_drops(5) is None
    first = monitor.observe_drops(50)
    assert first is not None
    # The same class never floods the dump directory.
    assert monitor.observe_drops(500) is None

    assert monitor.observe_pool(high_water=5, capacity=100) is None
    assert monitor.observe_pool(high_water=95, capacity=100) is not None
    assert monitor.observe_divergence("outputs differ at #3") is not None
    assert set(monitor.anomalies) == {
        flight.REASON_DROP_SPIKE,
        flight.REASON_POOL_HIGH_WATER,
        flight.REASON_DIVERGENCE,
    }
    assert recorder.dumps == 3


def test_first_divergence_none_when_identical():
    outputs = [[(b"aa", 0)], [], [(b"bb", 1)]]
    assert first_divergence(outputs, [list(o) for o in outputs]) is None


def test_first_divergence_reports_index_and_sides():
    expected = [[(b"aa", 0)], [(b"bb", 1)]]
    actual = [[(b"aa", 0)], []]
    diff = first_divergence(expected, actual)
    assert diff is not None
    assert diff.index == 1
    assert diff.expected == ((b"bb", 1),)
    assert diff.actual == ()
    rendered = diff.render()
    assert "packet #1" in rendered
    assert "(dropped)" in rendered
    assert b"bb".hex() in rendered


def test_first_divergence_length_mismatch():
    diff = first_divergence([[(b"aa", 0)]], [[(b"aa", 0)], [(b"cc", 1)]])
    assert diff is not None
    assert diff.index == 1
    assert diff.expected == ()
