"""Observability off must be invisible: identical outputs, no-op recorder.

The zero-cost-when-disabled contract has two halves:

- the module-level recorder defaults to the no-op recorder, so data
  paths skip every trace call after one ``active`` check per burst;
- enabling observability must not change what the data path *does* —
  only record it. A sweep's rendered table and emitted packets are
  byte-identical with the layer off and on.
"""

import pytest

from repro import obs
from repro.eval.experiments import fastpath_sweep
from repro.eval.reporting import render_fastpath_sweep
from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat
from repro.nat.vignat import VigNat
from repro.net.dpdk import DpdkRuntime
from repro.packets.builder import make_udp_packet


@pytest.fixture(autouse=True)
def restore_recorder():
    yield
    obs.disable_observability()


def test_default_recorder_is_noop():
    assert obs.recorder() is obs.NULL_RECORDER
    assert not obs.observability_enabled()
    # Tracing into the no-op recorder does nothing and allocates nothing.
    obs.recorder().trace("rx", t_us=1, worker=0)
    assert obs.recorder().flight is None


def test_enable_disable_round_trip():
    live = obs.enable_observability(ring_capacity=16)
    assert obs.recorder() is live
    assert live.active
    live.trace("rx", t_us=1)
    assert live.flight.recorded_total == 1
    obs.disable_observability()
    assert obs.recorder() is obs.NULL_RECORDER


def _drive_runtime():
    """One small burst-mode run; returns (transmitted wire bytes, counters)."""
    runtime = DpdkRuntime(port_count=2, pool_size=64)
    nat = VigNat(NatConfig(max_flows=128))
    for i in range(16):
        packet = make_udp_packet("10.0.0.5", "8.8.8.8", 5000 + i, 53, device=0)
        runtime.inject(0, packet, timestamp=i)
    runtime.main_loop_burst(nat, now_us=100, burst_size=8)
    wires = [(p_id, t, p.wire_bytes()) for p_id, t, p in runtime.collect()]
    return wires, nat.op_counters()


def test_runtime_outputs_identical_with_observability_on():
    off_wires, off_counters = _drive_runtime()
    obs.enable_observability(ring_capacity=64)
    on_wires, on_counters = _drive_runtime()
    recorded = obs.recorder().flight.recorded_total
    obs.disable_observability()

    assert on_wires == off_wires
    assert on_counters == off_counters
    # The run actually traced: rx + tx per forwarded packet at least.
    assert recorded >= 32


def test_sweep_render_identical_with_observability_on():
    kwargs = dict(flow_counts=(16,), packet_count=256)
    table_off = render_fastpath_sweep(fastpath_sweep(**kwargs))
    obs.enable_observability()
    table_on = render_fastpath_sweep(fastpath_sweep(**kwargs))
    obs.disable_observability()

    def stable(table: str) -> str:
        # Wall-clock columns jitter run to run with or without
        # observability; everything else (hit rates, modeled costs,
        # identity verdicts, counters) must match exactly. Wall-derived
        # cells are plain numbers (wall seconds, speedups) or the raw
        # table's off/cache/compiled triple; the two-part slash cells
        # (busy off/on, mpps off/on) are modeled and deterministic, so
        # they stay in the comparison.
        def wall_derived(cell: str) -> bool:
            parts = cell.split("/")
            if not all(p.replace(".", "").isdigit() for p in parts):
                return False
            return len(parts) != 2

        lines = []
        for line in table.splitlines():
            cells = line.split()
            lines.append(" ".join(c for c in cells if not wall_derived(c)))
        return "\n".join(lines)

    assert stable(table_on) == stable(table_off)


def test_fastpath_traces_hits_and_misses():
    obs.enable_observability(ring_capacity=256)
    nat = FastPathNat(VigNat(NatConfig(max_flows=128)))
    packet = make_udp_packet("10.0.0.5", "8.8.8.8", 5000, 53, device=0)
    nat.process_burst([packet.clone() for _ in range(4)], now=100)
    stages = [e.stage for e in obs.recorder().flight.last()]
    obs.disable_observability()
    assert stages.count("slow-path") == 1
    assert stages.count("fastpath-hit") == 3
