"""Unit tests for the limiter's obligations and CLI experiment smoke."""

from repro.cli import main
from repro.nat.limiter import LimiterConfig
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env_limiter import LimiterSemantics, limiter_symbolic_body

CFG = LimiterConfig()


class TestLimiterObligations:
    def test_every_path_has_obligations(self):
        result = ExhaustiveSymbolicEngine().explore(limiter_symbolic_body(CFG))
        semantics = LimiterSemantics(CFG)
        names = set()
        for trace in result.tree.paths:
            obligations = semantics.obligations(trace)
            assert obligations
            names.update(o.name for o in obligations)
        assert "fixed-window-no-rejuvenation" in names
        assert "bump-increments-by-one" in names
        assert "forward-justified" in names
        assert "drop-justified" in names

    def test_bump_paths_carry_budget_guard(self):
        result = ExhaustiveSymbolicEngine().explore(limiter_symbolic_body(CFG))
        semantics = LimiterSemantics(CFG)
        seen = 0
        for trace in result.tree.paths:
            if any(c.fn == "counter_bump" for c in trace.calls):
                names = [o.name for o in semantics.obligations(trace)]
                assert "bump-only-under-budget" in names
                seen += 1
        assert seen >= 1

    def test_limiter_paths_cover_both_directions(self):
        result = ExhaustiveSymbolicEngine().explore(limiter_symbolic_body(CFG))
        sites = [s for s in result.coverage if "limiter.py" in s]
        assert sites
        assert all(result.coverage[s] == {True, False} for s in sites)


class TestCliVerifyLimiter:
    def test_verify_limiter(self, capsys):
        assert main(["verify", "limiter"]) == 0
        assert "VigLimiter" in capsys.readouterr().out

    def test_coverage_flag(self, capsys):
        assert main(["verify", "limiter", "--coverage"]) == 0
        out = capsys.readouterr().out
        assert "Branch coverage" in out
        assert "limiter.py" in out
