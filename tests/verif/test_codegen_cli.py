"""Verification-task codegen and the command-line interface."""

import pytest

from repro.cli import main
from repro.nat.config import NatConfig
from repro.verif.codegen import render_all_tasks, render_verification_task
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env import vignat_symbolic_body
from repro.verif.semantics import NatSemantics


@pytest.fixture(scope="module")
def nat_result():
    return ExhaustiveSymbolicEngine().explore(vignat_symbolic_body(NatConfig()))


class TestCodegen:
    def test_every_path_renders(self, nat_result):
        semantics = NatSemantics(NatConfig())
        text = render_all_tasks(nat_result.tree.paths, semantics, "VigNat")
        assert text.count("void verification_task") == nat_result.stats.paths

    def test_task_structure(self, nat_result):
        trace = next(t for t in nat_result.tree.paths if t.sends)
        semantics = NatSemantics(NatConfig())
        text = render_verification_task(trace, semantics.obligations(trace))
        assert "//@ assume(" in text
        assert "P5: model vs contract" in text
        assert "Semantic properties woven in" in text
        assert "send(" in text

    def test_declarations_cover_symbols(self, nat_result):
        trace = nat_result.tree.paths[0]
        text = render_verification_task(trace)
        for name in trace.widths:
            if any(name in str(c) for c in trace.pc):
                assert name.replace("#", "_") in text

    def test_assumes_follow_call_order(self, nat_result):
        trace = next(t for t in nat_result.tree.paths if len(t.calls) > 3)
        text = render_verification_task(trace)
        # The receive() call appears before constraints about the packet.
        recv_pos = text.index("receive()")
        assume_pos = text.index("assume((pkt_ethertype")
        assert recv_pos < assume_pos


class TestCli:
    def test_verify_nat_exit_zero(self, capsys):
        assert main(["verify", "nat"]) == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out

    def test_verify_firewall_exit_zero(self, capsys):
        assert main(["verify", "firewall"]) == 0

    def test_verify_discard_models(self, capsys):
        assert main(["verify", "discard", "--model", "good"]) == 0
        assert main(["verify", "discard", "--model", "over"]) == 1
        assert main(["verify", "discard", "--model", "under"]) == 1

    def test_emit_tasks(self, tmp_path, capsys):
        target = tmp_path / "tasks.c"
        assert main(["verify", "nat", "--emit-tasks", str(target)]) == 0
        assert "verification_task" in target.read_text()

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "translated" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
