"""The symbolic expression language: folding, arithmetic, negation."""

import pytest
from hypothesis import given, strategies as st

from repro.verif.expr import (
    And,
    BoolConst,
    ExprError,
    FALSE,
    IntExpr,
    Or,
    TRUE,
    conj,
    disj,
    eq,
    implies,
    le,
    lt,
    ne,
    negate,
)


def var(name, width=32):
    return IntExpr.var(name, width)


class TestIntExpr:
    def test_constant_folding_in_arithmetic(self):
        a = IntExpr.const(5).add(IntExpr.const(3))
        assert a.is_const and a.offset == 8

    def test_variable_cancellation(self):
        x = var("x")
        assert x.sub(x).is_const

    def test_add_sub_roundtrip(self):
        x, y = var("x"), var("y")
        expr = x.add(y).sub(y)
        assert expr.terms == x.terms

    def test_unit_coefficient_enforced(self):
        x = var("x")
        with pytest.raises(ExprError):
            x.add(x)  # coefficient 2

    def test_evaluate(self):
        x, y = var("x"), var("y")
        expr = x.sub(y).add(IntExpr.const(10))
        assert expr.evaluate({"x": 7, "y": 3}) == 14

    def test_str_rendering(self):
        x = var("x")
        assert str(x.add(IntExpr.const(1))) == "x+1"
        assert str(IntExpr.const(0)) == "+0" or str(IntExpr.const(0)) == "0"


class TestComparisonFolding:
    def test_const_const_folds(self):
        assert eq(IntExpr.const(1), IntExpr.const(1)) is TRUE or eq(
            IntExpr.const(1), IntExpr.const(1)
        ) == BoolConst(True)
        assert lt(IntExpr.const(2), IntExpr.const(1)) == BoolConst(False)

    def test_identical_expression_folds(self):
        x = var("x")
        assert eq(x, x) == BoolConst(True)
        assert ne(x, x) == BoolConst(False)
        assert le(x, x) == BoolConst(True)
        assert lt(x, x) == BoolConst(False)

    def test_width_irrelevant_to_folding(self):
        a = IntExpr.var("x", 16)
        b = IntExpr.var("x", 64)
        assert eq(a, b) == BoolConst(True)

    @given(st.integers(0, 100), st.integers(0, 100))
    def test_const_comparisons_match_python(self, a, b):
        assert eq(IntExpr.const(a), IntExpr.const(b)) == BoolConst(a == b)
        assert lt(IntExpr.const(a), IntExpr.const(b)) == BoolConst(a < b)
        assert le(IntExpr.const(a), IntExpr.const(b)) == BoolConst(a <= b)


class TestBooleanStructure:
    def test_conj_flattens_and_short_circuits(self):
        x = var("x")
        atom = eq(x, IntExpr.const(1))
        assert conj(TRUE, atom) == atom
        assert conj(FALSE, atom) == FALSE
        inner = conj(atom, atom)
        assert isinstance(inner, And)
        assert conj(inner, atom) == And((atom, atom, atom))

    def test_disj_flattens_and_short_circuits(self):
        x = var("x")
        atom = eq(x, IntExpr.const(1))
        assert disj(FALSE, atom) == atom
        assert disj(TRUE, atom) == TRUE
        assert isinstance(disj(atom, atom), Or)

    def test_empty_conj_disj(self):
        assert conj() == TRUE
        assert disj() == FALSE

    def test_negate_atom(self):
        x = var("x")
        assert negate(eq(x, IntExpr.const(1))) == ne(x, IntExpr.const(1))
        assert negate(lt(x, IntExpr.const(5))) == le(IntExpr.const(5), x)

    def test_negate_pushes_into_structure(self):
        x = var("x")
        a = eq(x, IntExpr.const(1))
        b = lt(x, IntExpr.const(5))
        negated = negate(conj(a, b))
        assert isinstance(negated, Or)

    def test_double_negation(self):
        x = var("x")
        atom = eq(x, IntExpr.const(1))
        assert negate(negate(atom)) == atom

    def test_implies(self):
        x = var("x")
        a = eq(x, IntExpr.const(1))
        assert implies(FALSE, a) == TRUE
        assert implies(TRUE, a) == a

    @given(st.booleans(), st.booleans())
    def test_evaluation_agrees_with_python(self, a, b):
        fa, fb = BoolConst(a), BoolConst(b)
        assert conj(fa, fb).evaluate({}) == (a and b)
        assert disj(fa, fb).evaluate({}) == (a or b)
        assert negate(fa).evaluate({}) == (not a)
