"""The SMT-lite decision procedure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.verif.expr import IntExpr, conj, disj, eq, le, lt, ne, negate
from repro.verif.solver import Solver, SolverUnknown

W = {"x": 16, "y": 16, "z": 16, "w": 8, "b": 1}
X, Y, Z = (IntExpr.var(n, 16) for n in "xyz")
B = IntExpr.var("b", 1)


def c(v):
    return IntExpr.const(v)


def solver():
    return Solver(W)


class TestSatisfiability:
    def test_trivial_sat(self):
        assert solver().satisfiable([eq(X, c(5))]) == {"x": 5}

    def test_models_are_certified(self):
        model = solver().satisfiable([eq(X, Y.add(c(5))), lt(X, c(10))])
        assert model["x"] == model["y"] + 5 and model["x"] < 10

    def test_contradictory_order_unsat(self):
        assert solver().satisfiable([lt(X, c(3)), lt(c(5), X)]) is None

    def test_equality_chain(self):
        model = solver().satisfiable([eq(X, Y.add(c(1))), eq(Y, Z.add(c(1))), eq(Z, c(7))])
        assert model == {"x": 9, "y": 8, "z": 7}

    def test_equality_contradiction(self):
        assert solver().satisfiable([eq(X, c(1)), eq(X, c(2))]) is None

    def test_equality_vs_disequality_unsat(self):
        assert solver().satisfiable([eq(X, c(9)), ne(X, c(9))]) is None

    def test_var_var_disequality_in_same_class(self):
        assert (
            solver().satisfiable([eq(X, Y.add(c(1))), ne(X, Y.add(c(1)))]) is None
        )

    def test_pinned_interval_with_exclusions(self):
        # x in [0, 2], x != 0, 1, 2 -> UNSAT by complete enumeration.
        formulas = [le(X, c(2)), ne(X, c(0)), ne(X, c(1)), ne(X, c(2))]
        assert solver().satisfiable(formulas) is None

    def test_disequality_repair(self):
        model = solver().satisfiable([le(X, c(100)), ne(X, c(0))])
        assert model is not None and model["x"] != 0

    def test_domain_bounds_respected(self):
        model = solver().satisfiable([le(c(0xFFFF), X)])
        assert model == {"x": 0xFFFF}
        assert solver().satisfiable([lt(c(0xFFFF), X)]) is None

    def test_width1_flag(self):
        s = Solver(W)
        assert s.satisfiable([eq(B, c(1))]) == {"b": 1}
        assert s.satisfiable([ne(B, c(0)), ne(B, c(1))]) is None

    def test_unknown_variable_raises(self):
        with pytest.raises(SolverUnknown):
            Solver({}).satisfiable([eq(IntExpr.var("ghost", 8), c(1))])

    def test_unrelated_vars_do_not_break_completeness(self):
        # The pinned-x contradiction must be found even with a huge free y.
        formulas = [
            le(X, c(512)),
            ne(X, c(512)),
            le(c(512), X),
            le(Y, c(0xFFFF)),
            ne(Y, c(9)),
        ]
        assert solver().satisfiable(formulas) is None


class TestBooleanStructure:
    def test_disjunction_explored(self):
        formula = disj(eq(X, c(1)), eq(X, c(2)))
        model = solver().satisfiable([formula, ne(X, c(1))])
        assert model == {"x": 2}

    def test_nested_structure(self):
        formula = conj(
            disj(eq(X, c(1)), eq(X, c(2))),
            disj(eq(Y, c(3)), eq(Y, c(4))),
            ne(X, c(1)),
            ne(Y, c(4)),
        )
        assert solver().satisfiable([formula]) == {"x": 2, "y": 3}

    def test_unsat_across_disjuncts(self):
        formula = disj(eq(X, c(1)), eq(X, c(2)))
        assert solver().satisfiable([formula, le(c(3), X)]) is None

    def test_negation_of_structure(self):
        formula = negate(conj(eq(X, c(1)), eq(Y, c(2))))
        model = solver().satisfiable([formula, eq(X, c(1))])
        assert model is not None and model["y"] != 2


class TestEntailment:
    def test_basic_entailment(self):
        s = solver()
        assert s.entails([le(X, c(9))], lt(X, c(11)))
        assert not s.entails([le(X, c(12))], lt(X, c(11)))

    def test_entails_through_equalities(self):
        s = solver()
        assert s.entails([eq(X, Y.add(c(1))), eq(Y, c(5))], eq(X, c(6)))

    def test_entails_disjunction_goal(self):
        s = solver()
        goal = disj(eq(X, c(1)), le(c(10), X))
        assert s.entails([eq(X, c(1))], goal)
        assert s.entails([le(c(20), X)], goal)
        assert not s.entails([eq(X, c(5))], goal)

    def test_vacuous_entailment(self):
        s = solver()
        assert s.entails([eq(X, c(1)), eq(X, c(2))], eq(Y, c(99)))

    def test_equivalent_under(self):
        s = solver()
        a = eq(X, c(5))
        b = conj(le(X, c(5)), le(c(5), X))
        assert s.equivalent_under([], a, b)


@settings(max_examples=60, deadline=None)
@given(
    bounds=st.tuples(st.integers(0, 60), st.integers(0, 60)),
    pivot=st.integers(0, 60),
)
def test_interval_reasoning_sound(bounds, pivot):
    """lo <= x <= hi entails x != pivot iff pivot outside [lo, hi]."""
    lo, hi = min(bounds), max(bounds)
    s = solver()
    entailed = s.entails([le(c(lo), X), le(X, c(hi))], ne(X, c(pivot)))
    assert entailed == (pivot < lo or pivot > hi)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 5), min_size=0, max_size=7))
def test_exclusion_set_completeness(excluded):
    """x in [0,5] minus exclusions is SAT iff something remains."""
    s = solver()
    formulas = [le(X, c(5))] + [ne(X, c(v)) for v in excluded]
    model = s.satisfiable(formulas)
    remaining = set(range(6)) - set(excluded)
    if remaining:
        assert model is not None and model["x"] in remaining
    else:
        assert model is None
