"""Unit tests for the obligation builders in repro.verif.semantics."""

from repro.nat.config import NatConfig
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.expr import eq, IntExpr
from repro.verif.nf_env import vignat_symbolic_body
from repro.verif.semantics import FirewallSemantics, NatSemantics
from repro.verif.solver import Solver

CFG = NatConfig()


def explore():
    return ExhaustiveSymbolicEngine().explore(vignat_symbolic_body(CFG))


def classify(trace):
    """Reproduce the path classification the semantics module performs."""
    solver = Solver(trace.widths)
    calls = {}
    for call in trace.calls:
        calls.setdefault(call.fn, call)
    recv = calls.get("receive")
    if recv is None:
        return "no-receive"
    received = recv.rets["received"]
    if solver.entails(trace.pc, eq(received, IntExpr.const(0))):
        return "idle"
    if trace.sends:
        return "forward"
    return "drop"


class TestObligationConstruction:
    def test_every_path_gets_obligations(self):
        result = explore()
        semantics = NatSemantics(CFG)
        for trace in result.tree.paths:
            obligations = semantics.obligations(trace)
            assert obligations, f"path {trace.path_id} has no obligations"

    def test_idle_paths_get_silence_obligation(self):
        result = explore()
        semantics = NatSemantics(CFG)
        for trace in result.tree.paths:
            if classify(trace) == "idle":
                names = [o.name for o in semantics.obligations(trace)]
                assert "silent-when-idle" in names

    def test_forward_paths_get_forward_obligation(self):
        result = explore()
        semantics = NatSemantics(CFG)
        seen = 0
        for trace in result.tree.paths:
            if classify(trace) == "forward":
                names = [o.name for o in semantics.obligations(trace)]
                assert "forward-justified" in names
                seen += 1
        assert seen >= 3  # out-created, out-found, in-found at least

    def test_drop_paths_get_drop_obligation(self):
        result = explore()
        semantics = NatSemantics(CFG)
        seen = 0
        for trace in result.tree.paths:
            if classify(trace) == "drop":
                names = [o.name for o in semantics.obligations(trace)]
                assert "drop-justified" in names
                seen += 1
        assert seen >= 4

    def test_creation_paths_get_port_rule(self):
        result = explore()
        semantics = NatSemantics(CFG)
        seen = 0
        for trace in result.tree.paths:
            if any(c.fn == "dmap_put" for c in trace.calls):
                names = [o.name for o in semantics.obligations(trace)]
                assert "create-respects-port-rule" in names
                assert "create-only-internal" in names
                assert "create-only-when-room" in names
                seen += 1
        assert seen >= 1

    def test_expiry_threshold_on_every_receiving_path(self):
        result = explore()
        semantics = NatSemantics(CFG)
        for trace in result.tree.paths:
            if any(c.fn == "expire_items" for c in trace.calls):
                names = [o.name for o in semantics.obligations(trace)]
                assert "expiry-threshold" in names

    def test_structural_failure_for_double_send(self):
        """Two sends for one arrival is flagged without a proof attempt."""
        result = explore()
        trace = next(t for t in result.tree.paths if t.sends)
        trace.sends.append(trace.sends[0])  # corrupt the trace
        semantics = NatSemantics(CFG)
        obligations = semantics.obligations(trace)
        broken = [o for o in obligations if not o.structural_ok]
        assert broken and broken[0].name == "at-most-one-send"


class TestFirewallSemanticsDiffers:
    def test_nat_spec_rejects_identity_forwarding(self):
        """Swapping the specs must break the proofs: the firewall's
        identity forwarding violates the NAT spec and vice versa."""
        from repro.verif.nf_env_fw import firewall_symbolic_body
        from repro.verif.validator import Validator

        fw_result = ExhaustiveSymbolicEngine().explore(firewall_symbolic_body(CFG))
        # The firewall verified under its own spec...
        own = Validator(FirewallSemantics(CFG)).validate(fw_result, "fw")
        assert own.p1.proven
        # ...fails under the NAT's spec (it never rewrites sources).
        crossed = Validator(NatSemantics(CFG)).validate(fw_result, "fw-as-nat")
        assert not crossed.p1.proven

    def test_firewall_spec_rejects_rewriting(self):
        from repro.verif.validator import Validator

        nat_result = explore()
        crossed = Validator(FirewallSemantics(CFG)).validate(nat_result, "nat-as-fw")
        assert not crossed.p1.proven

    def test_port_rule_is_nat_specific(self):
        nat_result = explore()
        fw_sem_names = set()
        from repro.verif.nf_env_fw import firewall_symbolic_body

        fw_result = ExhaustiveSymbolicEngine().explore(firewall_symbolic_body(CFG))
        for trace in fw_result.tree.paths:
            fw_sem_names.update(
                o.name for o in FirewallSemantics(CFG).obligations(trace)
            )
        nat_sem_names = set()
        for trace in nat_result.tree.paths:
            nat_sem_names.update(o.name for o in NatSemantics(CFG).obligations(trace))
        assert "create-respects-port-rule" in nat_sem_names
        assert "create-respects-port-rule" not in fw_sem_names
