"""Exploration-context behaviours and concrete-replay classification."""

import pytest

from repro.nat.config import NatConfig
from repro.verif.concretize import ReplayOutcome, replay_path
from repro.verif.context import ExplorationContext, PathAbort
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.expr import eq, IntExpr
from repro.verif.nf_env import vignat_symbolic_body


class TestContext:
    def test_assume_false_aborts_path(self):
        from repro.verif.expr import FALSE
        from repro.verif.symbols import SymBool

        ctx = ExplorationContext()
        with pytest.raises(PathAbort):
            ctx.assume(SymBool(FALSE, ctx))

    def test_assume_true_is_noop(self):
        from repro.verif.expr import TRUE
        from repro.verif.symbols import SymBool

        ctx = ExplorationContext()
        ctx.assume(SymBool(TRUE, ctx))
        assert ctx.pc == []

    def test_fresh_names_unique(self):
        ctx = ExplorationContext()
        a = ctx.fresh("x", 8)
        b = ctx.fresh("x", 8)
        assert str(a.expr) != str(b.expr)
        assert set(ctx.widths) == {"x", "x#1"}

    def test_planned_branches_replay(self):
        ctx = ExplorationContext(plan=[False])
        x = ctx.fresh("x", 8)
        taken = bool(x == 3)
        assert taken is False
        assert len(ctx.pc) == 1  # the negated constraint was recorded

    def test_forced_branch_not_scheduled(self):
        ctx = ExplorationContext()
        x = ctx.fresh("x", 8)
        ctx.assume(x <= 10)
        taken = bool(x < 200)  # only True is feasible
        assert taken is True
        assert ctx.decisions[-1].forced
        assert not ctx.decisions[-1].flip_feasible

    def test_symint_truthiness_rejected(self):
        ctx = ExplorationContext()
        x = ctx.fresh("x", 8)
        with pytest.raises(TypeError):
            bool(x)

    def test_check_records_counterexample(self):
        ctx = ExplorationContext()
        x = ctx.fresh("x", 8)
        proven = ctx.check(eq(x.expr, IntExpr.const(3)), "assert")
        assert not proven
        assert ctx.checks[-1].counterexample is not None
        assert ctx.checks[-1].counterexample["x"] != 3


class TestConcretizeClassification:
    @pytest.fixture(scope="class")
    def traces(self):
        cfg = NatConfig(max_flows=8, start_port=1000)
        result = ExhaustiveSymbolicEngine().explore(vignat_symbolic_body(cfg))
        return cfg, result.tree.paths

    def test_idle_paths_skipped(self, traces):
        cfg, paths = traces
        idle = [t for t in paths if not t.calls or all(
            c.fn != "receive" or "device" not in c.rets for c in t.calls
        )]
        for trace in idle:
            outcome = replay_path(trace, cfg)
            assert outcome.status == "skipped"

    def test_outcomes_carry_path_ids(self, traces):
        cfg, paths = traces
        outcome = replay_path(paths[0], cfg)
        assert isinstance(outcome, ReplayOutcome)
        assert outcome.path_id == paths[0].path_id

    def test_forward_paths_match(self, traces):
        cfg, paths = traces
        matched = 0
        for trace in paths:
            if trace.sends:
                outcome = replay_path(trace, cfg)
                assert outcome.status in ("match", "model_only"), outcome.detail
                matched += outcome.status == "match"
        assert matched >= 2
