"""Proof-report serialization and the CLI proof cache."""

import json

from repro.cli import _proof_cache_key, main
from repro.nat.config import NatConfig
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env import vignat_symbolic_body
from repro.verif.report import ProofReport
from repro.verif.semantics import NatSemantics
from repro.verif.validator import Validator


def make_report():
    cfg = NatConfig()
    result = ExhaustiveSymbolicEngine().explore(vignat_symbolic_body(cfg))
    return Validator(NatSemantics(cfg)).validate(result, "VigNat")


class TestSerialization:
    def test_roundtrip(self):
        report = make_report()
        data = json.loads(json.dumps(report.to_dict()))
        restored = ProofReport.from_dict(data)
        assert restored.verified == report.verified
        assert restored.paths == report.paths
        assert restored.traces == report.traces
        assert [v.name for v in restored.verdicts()] == ["P1", "P2", "P3", "P4", "P5"]
        assert restored.render() == report.render()

    def test_failures_survive_roundtrip(self):
        report = make_report()
        report.p1.failures.append("synthetic failure")
        report.p1.proven = False
        restored = ProofReport.from_dict(report.to_dict())
        assert not restored.verified
        assert restored.p1.failures == report.p1.failures


class TestProofCache:
    def test_key_stable_within_a_session(self):
        assert _proof_cache_key("nat") == _proof_cache_key("nat")

    def test_key_differs_per_nf(self):
        assert _proof_cache_key("nat") != _proof_cache_key("firewall")

    def test_cache_roundtrip(self, tmp_path, capsys):
        cache = str(tmp_path / "proofs")
        assert main(["verify", "nat", "--cache", cache]) == 0
        first = capsys.readouterr().out
        assert "proof cached at" in first
        assert main(["verify", "nat", "--cache", cache]) == 0
        second = capsys.readouterr().out
        assert "loaded from cache" in second
        assert "VERIFIED" in second

    def test_cached_failure_keeps_failing_exit(self, tmp_path, capsys):
        cache = str(tmp_path / "proofs")
        assert main(["verify", "discard", "--model", "over", "--cache", cache]) == 1
        capsys.readouterr()
        assert main(["verify", "discard", "--model", "over", "--cache", cache]) == 1


class TestCliExperiments:
    def test_verification_artifact(self, capsys):
        assert main(["experiments", "verification"]) == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out
        assert "108 paths" in out  # the paper's reference number
