"""Golden execution-tree regression: the NAT's path structure is pinned.

Exhaustive exploration of VigNat must produce exactly these call-sequence
shapes. If an engine/model/logic change alters the tree — paths appearing,
disappearing or changing their libVig call sequence — this test fails and
forces a deliberate review, the same role VigNAT's "108 paths" number
plays in the paper.
"""

from collections import Counter

from repro.nat.config import NatConfig
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env import vignat_symbolic_body

#: Every feasible path, as its sequence of traced calls (sends inlined
#: as "send"), with multiplicity.
GOLDEN_NAT_PATHS = Counter(
    {
        # no packet received (expire-guard true/false)
        ("loop_invariant_produce", "current_time", "expire_items", "receive"): 2,
        # non-IPv4 -> drop
        (
            "loop_invariant_produce", "current_time", "expire_items",
            "receive", "drop",
        ): 2 * 3,  # non-IPv4, non-TCP/UDP, unknown device
        # external, no match -> drop
        (
            "loop_invariant_produce", "current_time", "expire_items",
            "receive", "dmap_get_by_second_key", "drop",
        ): 2,
        # internal, no match, table full -> drop
        (
            "loop_invariant_produce", "current_time", "expire_items",
            "receive", "dmap_get_by_first_key",
            "dchain_allocate_new_index", "drop",
        ): 2,
        # internal, match -> rejuvenate, read entry, send
        (
            "loop_invariant_produce", "current_time", "expire_items",
            "receive", "dmap_get_by_first_key", "dchain_rejuvenate_index",
            "dmap_get_value", "send",
        ): 2,
        # internal, no match, created -> put, read entry, send
        (
            "loop_invariant_produce", "current_time", "expire_items",
            "receive", "dmap_get_by_first_key",
            "dchain_allocate_new_index", "dmap_put", "dmap_get_value", "send",
        ): 2,
        # external, match -> rejuvenate, read entry, send
        (
            "loop_invariant_produce", "current_time", "expire_items",
            "receive", "dmap_get_by_second_key", "dchain_rejuvenate_index",
            "dmap_get_value", "send",
        ): 2,
    }
)


def signature(trace):
    events = [call.fn for call in trace.calls]
    for _send in trace.sends:
        events.append("send")
    return tuple(events)


class TestGoldenPaths:
    def test_nat_execution_tree_matches_golden(self):
        result = ExhaustiveSymbolicEngine().explore(
            vignat_symbolic_body(NatConfig())
        )
        observed = Counter(signature(t) for t in result.tree.paths)
        assert observed == GOLDEN_NAT_PATHS, (
            "the NAT's execution tree changed; review and re-pin:\n"
            + "\n".join(f"{count}x {sig}" for sig, count in sorted(observed.items()))
        )

    def test_total_path_count_pinned(self):
        assert sum(GOLDEN_NAT_PATHS.values()) == 18
