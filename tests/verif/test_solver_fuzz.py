"""Solver fuzzing: random formulas cross-checked against brute force.

The decision procedure's verdicts are load-bearing for every proof, so
this suite generates random conjunctions/disjunctions of atoms over tiny
domains and compares satisfiability against exhaustive enumeration —
catching both unsoundness (fake UNSAT) and incompleteness (fake SAT is
impossible by construction, since models are certified, but UNKNOWN
escapes would surface as errors here).
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.verif.expr import Atom, EQ, IntExpr, LE, LT, NE, conj, disj, negate
from repro.verif.solver import Solver, SolverUnknown

VARS = ["x", "y", "z"]
WIDTHS = {"x": 3, "y": 3, "z": 3}  # domain [0, 7] — enumerable


def terms():
    const = st.integers(-4, 8).map(lambda v: IntExpr.const(v))
    var = st.sampled_from(VARS).map(lambda n: IntExpr.var(n, WIDTHS[n]))
    var_plus = st.tuples(st.sampled_from(VARS), st.integers(-3, 3)).map(
        lambda t: IntExpr.var(t[0], WIDTHS[t[0]]).add(IntExpr.const(t[1]))
    )
    return st.one_of(const, var, var_plus)


def atoms():
    return st.builds(
        lambda op, lhs, rhs: Atom(op, lhs, rhs),
        st.sampled_from([EQ, NE, LT, LE]),
        terms(),
        terms(),
    )


def formulas(depth=2):
    if depth == 0:
        return atoms()
    sub = formulas(depth - 1)
    return st.one_of(
        atoms(),
        st.lists(sub, min_size=1, max_size=3).map(lambda fs: conj(*fs)),
        st.lists(sub, min_size=1, max_size=3).map(lambda fs: disj(*fs)),
        sub.map(negate),
    )


def brute_force_satisfiable(formula_list):
    for combo in itertools.product(range(8), repeat=len(VARS)):
        assignment = dict(zip(VARS, combo))
        if all(f.evaluate(assignment) for f in formula_list):
            return True
    return False


@settings(max_examples=300, deadline=None)
@given(st.lists(formulas(), min_size=1, max_size=4))
def test_solver_agrees_with_brute_force(formula_list):
    solver = Solver(WIDTHS)
    expected = brute_force_satisfiable(formula_list)
    try:
        model = solver.satisfiable(formula_list)
    except SolverUnknown:
        # UNKNOWN is allowed (conservative), but only when the answer is
        # genuinely out of the fragment — never on these difference-logic
        # formulas with fully enumerable domains.
        raise AssertionError("solver UNKNOWN on an enumerable formula")
    if expected:
        assert model is not None, "solver claimed UNSAT on a satisfiable formula"
        assert all(f.evaluate(model) for f in formula_list)
    else:
        assert model is None, f"bogus model {model} for an UNSAT formula"


@settings(max_examples=150, deadline=None)
@given(st.lists(formulas(depth=1), min_size=1, max_size=3), formulas(depth=1))
def test_entailment_agrees_with_brute_force(assumptions, goal):
    solver = Solver(WIDTHS)
    expected = not brute_force_satisfiable(list(assumptions) + [negate(goal)])
    assert solver.entails(assumptions, goal) == expected
