"""Trace datatype unit tests: rendering, prefix accounting, violations."""

from repro.verif.expr import IntExpr, eq
from repro.verif.trace import (
    CallRecord,
    CheckRecord,
    ExecutionTree,
    PathTrace,
    SendRecord,
)


def make_trace(path_id=0, decisions=(), crashed=None):
    return PathTrace(
        path_id=path_id,
        decisions=tuple((d, False) for d in decisions),
        crashed=crashed,
    )


class TestExecutionTree:
    def test_trace_count_counts_distinct_prefixes(self):
        tree = ExecutionTree(
            paths=[
                make_trace(0, (True, True)),
                make_trace(1, (True, False)),
                make_trace(2, (False,)),
            ]
        )
        # Prefixes: (), (T), (F), (TT), (TF) -> 5.
        assert tree.trace_count() == 5
        assert tree.path_count() == 3

    def test_single_path_tree(self):
        tree = ExecutionTree(paths=[make_trace(0, ())])
        assert tree.trace_count() == 1

    def test_crashed_paths(self):
        tree = ExecutionTree(
            paths=[make_trace(0), make_trace(1, crashed="ZeroDivisionError")]
        )
        assert len(tree.crashed_paths()) == 1

    def test_violations_collects_failed_checks(self):
        trace = make_trace(0)
        x = IntExpr.var("x", 8)
        trace.checks.append(
            CheckRecord(kind="assert", property=eq(x, IntExpr.const(1)), proven=False)
        )
        trace.checks.append(
            CheckRecord(kind="assert", property=eq(x, x), proven=True)
        )
        tree = ExecutionTree(paths=[trace])
        assert len(tree.violations()) == 1


class TestRendering:
    def test_render_includes_calls_sends_constraints(self):
        trace = make_trace(0)
        x = IntExpr.var("pkt_port", 16)
        trace.pc.append(eq(x, IntExpr.const(9)))
        trace.calls.append(
            CallRecord(fn="ring_pop_front", args={"length": IntExpr.const(3)},
                       rets={"dst_port": x})
        )
        trace.sends.append(
            SendRecord(
                device=IntExpr.const(1), src_ip=IntExpr.const(0),
                src_port=IntExpr.const(0), dst_ip=IntExpr.const(0),
                dst_port=x, protocol=IntExpr.const(0),
            )
        )
        text = trace.render()
        assert "ring_pop_front(length=3) ==> [dst_port=pkt_port]" in text
        assert "send(" in text
        assert "(pkt_port == 9)" in text
        assert text.startswith("loop_invariant_produce")

    def test_render_no_double_invariant_marker(self):
        trace = make_trace(0)
        trace.calls.append(CallRecord(fn="loop_invariant_produce"))
        text = trace.render()
        assert text.count("loop_invariant_produce") == 1

    def test_call_record_str(self):
        record = CallRecord(
            fn="dmap_put",
            args={"index": IntExpr.const(5)},
            rets={},
        )
        assert str(record) == "dmap_put(index=5) ==> []"
