"""The symbolic models: call recording, contracts, constraint tagging."""

from repro.nat.config import NatConfig
from repro.verif.context import ExplorationContext
from repro.verif.contracts import CONTRACTS, ContractContext
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.models.nat import NatModelState
from repro.verif.nf_env import vignat_symbolic_body


def fresh_models(plan=None):
    ctx = ExplorationContext(plan=plan if plan is not None else [])
    models = NatModelState(ctx, capacity=100, start_port=1000)
    return ctx, models


class TestCallRecording:
    def test_loop_invariant_recorded_first(self):
        ctx, _models = fresh_models()
        assert ctx.calls[0].fn == "loop_invariant_produce"
        assert "size" in ctx.calls[0].rets

    def test_invariant_constraint_tagged_assume(self):
        ctx, _models = fresh_models()
        assert ctx.pc_tags[0] == "assume"
        assert "table_size" in str(ctx.pc[0])

    def test_lookup_found_branch_records_selector(self):
        ctx, models = fresh_models(plan=[True])  # force the found branch
        key = {"src_ip": 1, "src_port": 2, "dst_ip": 3, "dst_port": 4, "protocol": 17}
        index = models.dmap_get_by_first_key(key)
        assert index is not None
        call = ctx.calls[-1]
        assert call.fn == "dmap_get_by_first_key"
        assert call.selector_indices  # the found==1 branch
        assert call.model_constraints  # index bounds, non-empty table

    def test_lookup_missing_branch_has_no_output_constraints(self):
        ctx, models = fresh_models(plan=[False])
        key = {"src_ip": 1, "src_port": 2, "dst_ip": 3, "dst_port": 4, "protocol": 17}
        assert models.dmap_get_by_first_key(key) is None
        call = ctx.calls[-1]
        assert not call.model_constraints

    def test_contract_instantiated_on_record(self):
        ctx, models = fresh_models(plan=[True])
        key = {"src_ip": 1, "src_port": 2, "dst_ip": 3, "dst_port": 4, "protocol": 17}
        models.dmap_get_by_first_key(key)
        call = ctx.calls[-1]
        assert call.post  # Fig. 8-style postcondition present

    def test_trusted_models_carry_no_contract(self):
        ctx, models = fresh_models(plan=[True])
        models.receive()
        call = ctx.calls[-1]
        assert not call.pre and not call.post
        assert CONTRACTS["receive"].trusted

    def test_get_value_assumes_loop_invariant(self):
        ctx, models = fresh_models(plan=[True])
        key = {"src_ip": 1, "src_port": 2, "dst_ip": 3, "dst_port": 4, "protocol": 17}
        index = models.dmap_get_by_first_key(key)
        models.dmap_get_value(index)
        call = ctx.calls[-1]
        assert any("entry_ext_port" in str(c) for c in call.model_constraints)

    def test_allocation_selector_is_occupancy(self):
        ctx, models = fresh_models(plan=[True])
        now = models.current_time()
        index = models.dchain_allocate_new_index(now)
        assert index is not None
        call = ctx.calls[-1]
        selector_exprs = [str(ctx.pc[i]) for i in call.selector_indices]
        assert any("table_size" in s for s in selector_exprs)


class TestContractRegistry:
    def test_every_nat_model_call_has_a_registry_entry(self):
        cfg = NatConfig()
        result = ExhaustiveSymbolicEngine().explore(vignat_symbolic_body(cfg))
        called = {c.fn for t in result.tree.paths for c in t.calls}
        for fn in called:
            assert fn in CONTRACTS, f"{fn} missing a contract entry"

    def test_contract_context_carries_config(self):
        cc = ContractContext(capacity=42, start_port=7)
        clauses = CONTRACTS["dmap_put"].pre(
            {
                "index": __import__("repro.verif.expr", fromlist=["IntExpr"]).IntExpr.var("i", 32),
                "size": __import__("repro.verif.expr", fromlist=["IntExpr"]).IntExpr.var("s", 32),
            },
            {},
            cc,
        )
        assert any("42" in str(c) for c in clauses)
