"""Branch coverage from exhaustive symbolic execution."""

from repro.nat.config import NatConfig
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env import vignat_symbolic_body


class TestBranchCoverage:
    def test_every_stateless_branch_covered_both_ways(self):
        """Exhaustiveness, observably: every branch of core_logic.py is
        taken in both directions across the explored paths."""
        result = ExhaustiveSymbolicEngine().explore(
            vignat_symbolic_body(NatConfig())
        )
        core_sites = [
            site for site in result.coverage if "core_logic.py" in site
        ]
        assert len(core_sites) >= 5  # expiry guard, eth, proto, 2 devices...
        for site in core_sites:
            assert result.coverage[site] == {True, False}, site
        assert result.one_sided_branches() == []

    def test_dead_branch_is_one_sided(self):
        def body(ctx):
            x = ctx.fresh("x", 8)
            if x < 300:  # always true for u8: the else side is dead
                pass

        result = ExhaustiveSymbolicEngine().explore(body)
        assert len(result.one_sided_branches()) == 1

    def test_coverage_render(self):
        result = ExhaustiveSymbolicEngine().explore(
            vignat_symbolic_body(NatConfig())
        )
        text = result.render_coverage()
        assert "core_logic.py" in text
        assert "both" in text

    def test_sites_point_at_nf_code_not_toolchain(self):
        result = ExhaustiveSymbolicEngine().explore(
            vignat_symbolic_body(NatConfig())
        )
        for site in result.coverage:
            assert "symbols.py" not in site
            assert "context.py" not in site
