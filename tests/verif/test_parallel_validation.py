"""Parallel trace validation produces bit-identical reports (§5.2.2)."""

from repro.nat.bridge import BridgeConfig
from repro.nat.config import NatConfig
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env import vignat_symbolic_body
from repro.verif.nf_env_bridge import BridgeSemantics, bridge_symbolic_body
from repro.verif.semantics import NatSemantics
from repro.verif.validator import Validator


class TestParallelValidation:
    def test_identical_reports_nat(self):
        cfg = NatConfig()
        result = ExhaustiveSymbolicEngine().explore(vignat_symbolic_body(cfg))
        validator = Validator(NatSemantics(cfg))
        sequential = validator.validate(result, "nat", processes=1)
        parallel = validator.validate(result, "nat", processes=3)
        assert parallel.render() == sequential.render()
        assert parallel.verified

    def test_identical_reports_bridge(self):
        cfg = BridgeConfig()
        result = ExhaustiveSymbolicEngine().explore(bridge_symbolic_body(cfg))
        validator = Validator(BridgeSemantics(cfg))
        sequential = validator.validate(result, "bridge", processes=1)
        parallel = validator.validate(result, "bridge", processes=2)
        assert parallel.render() == sequential.render()

    def test_failures_survive_parallelism(self):
        """A failing proof fails identically in parallel."""
        from repro.verif.models.ring import OverApproximateRingModel
        from repro.verif.nf_env import discard_symbolic_body
        from repro.verif.semantics import DiscardSemantics

        result = ExhaustiveSymbolicEngine().explore(
            discard_symbolic_body(OverApproximateRingModel)
        )
        validator = Validator(DiscardSemantics())
        sequential = validator.validate(result, "d", processes=1)
        parallel = validator.validate(result, "d", processes=2)
        assert not parallel.verified
        assert sorted(parallel.p1.failures) == sorted(sequential.p1.failures)
