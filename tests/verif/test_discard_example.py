"""The §3 worked example: the discard NF under the three Fig. 4 models.

This is the paper's own validation of the lazy-proofs design:

- the *good* model (a) verifies everything;
- the *over-approximate* model (b) passes model validation (P5) but
  makes the semantic property (P1) unprovable;
- the *under-approximate* model (c) trivially satisfies the semantic
  property but fails model validation (P5).
"""

import pytest

from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.models.ring import (
    GoodRingModel,
    OverApproximateRingModel,
    UnderApproximateRingModel,
)
from repro.verif.nf_env import discard_symbolic_body
from repro.verif.semantics import DiscardSemantics
from repro.verif.validator import Validator


def run(model):
    result = ExhaustiveSymbolicEngine().explore(discard_symbolic_body(model))
    report = Validator(DiscardSemantics()).validate(result, model.__name__)
    return result, report


class TestGoodModel:
    def test_fully_verified(self):
        _, report = run(GoodRingModel)
        assert report.verified
        assert all(v.proven for v in report.verdicts())

    def test_path_structure(self):
        result, _ = run(GoodRingModel)
        assert result.stats.paths >= 6  # full/empty x received x port-9 x link
        assert result.tree.trace_count() > result.stats.paths

    def test_pop_precondition_proven(self):
        """P4: pop only happens on non-empty rings (Fig. 3's requires)."""
        _, report = run(GoodRingModel)
        assert report.p4.proven
        assert report.p4.obligations > 0


class TestOverApproximateModel:
    """Fig. 4 model (b): too abstract."""

    def test_p5_passes_but_p1_fails(self):
        _, report = run(OverApproximateRingModel)
        assert report.p5.proven
        assert not report.p1.proven
        assert not report.verified

    def test_failure_names_the_semantic_property(self):
        _, report = run(OverApproximateRingModel)
        assert any("dst_port != 9" in f for f in report.p1.failures)


class TestUnderApproximateModel:
    """Fig. 4 model (c): too specific."""

    def test_p1_passes_but_p5_fails(self):
        _, report = run(UnderApproximateRingModel)
        assert report.p1.proven  # port pinned to 0 trivially satisfies it
        assert not report.p5.proven
        assert not report.verified

    def test_failure_names_the_model_constraint(self):
        _, report = run(UnderApproximateRingModel)
        assert any("== 0" in f for f in report.p5.failures)


class TestInvalidModelsNeverProveIncorrectly:
    """§7: an invalid model may fail a proof, never fabricate one."""

    @pytest.mark.parametrize(
        "model", [GoodRingModel, OverApproximateRingModel, UnderApproximateRingModel]
    )
    def test_crash_freedom_holds_under_all_models(self, model):
        result, report = run(model)
        assert result.crash_free
        assert report.p2.proven

    def test_only_the_good_model_verifies(self):
        verdicts = {
            model.__name__: run(model)[1].verified
            for model in (
                GoodRingModel,
                OverApproximateRingModel,
                UnderApproximateRingModel,
            )
        }
        assert verdicts == {
            "GoodRingModel": True,
            "OverApproximateRingModel": False,
            "UnderApproximateRingModel": False,
        }
