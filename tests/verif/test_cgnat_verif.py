"""Concolic proof of the stateless CGNAT's bijection.

The symbolic twin of ``tests/nat/test_cgnat.py``: the same
``det_nat_loop_iteration`` body runs against ``SymbolicCgnatEnv``,
which concretizes the subscriber per path (keeping every formula in
difference logic) while ports stay fully symbolic — so the round-trip,
block-containment and overflow checks are *proved* over all 2^16
ports, not sampled.
"""

from repro.nat.cgnat import CgnatConfig
from repro.verif.nf_env_cgnat import verify_cgnat


def small_config(subscribers=4, ports_each=4):
    return CgnatConfig(
        start_port=1_000,
        max_flows=subscribers * ports_each,
        subscriber_count=subscribers,
    )


def test_default_cgnat_proof_verifies():
    report = verify_cgnat()
    assert report.verified
    assert report.crash_free
    assert report.checks_total > 0
    assert report.checks_proven == report.checks_total
    assert report.blocks_tile_domain
    assert report.shards_tile_domain


def test_path_count_covers_both_directions():
    # Forward: one path per subscriber (plus the out-of-pool miss and
    # the port-window drops). Return: one path per subscriber block
    # (plus the out-of-domain miss). Non-IPv4 / non-TCP-UDP / unknown
    # device round it out — the tree must fork at least once per
    # subscriber per direction.
    report = verify_cgnat(small_config(subscribers=4, ports_each=4))
    assert report.subscriber_count == 4
    assert report.paths >= 2 * 4

    wider = verify_cgnat(small_config(subscribers=8, ports_each=4))
    assert wider.paths > report.paths


def test_shard_tiling_is_checked_per_shard_count():
    report = verify_cgnat(small_config(), shard_count=4)
    assert report.shard_count == 4
    assert report.verified


def test_report_renders_verdict():
    report = verify_cgnat()
    text = report.render()
    assert "VERIFIED" in text
    assert "bijection" in text
    assert report.result is not None
    assert report.result.tree.path_count() == report.paths
