"""The exhaustive symbolic execution engine on toy NF bodies."""

import pytest

from repro.verif.engine import ExhaustiveSymbolicEngine


class TestPathEnumeration:
    def test_straight_line_is_one_path(self):
        def body(ctx):
            ctx.fresh("x", 16)

        result = ExhaustiveSymbolicEngine().explore(body)
        assert result.stats.paths == 1

    def test_single_branch_two_paths(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            if x == 0:
                pass
            else:
                pass

        result = ExhaustiveSymbolicEngine().explore(body)
        assert result.stats.paths == 2

    def test_nested_branches(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            y = ctx.fresh("y", 16)
            if x == 0:
                if y == 0:
                    pass
            else:
                if y == 1:
                    pass

        result = ExhaustiveSymbolicEngine().explore(body)
        assert result.stats.paths == 4

    def test_infeasible_branch_not_explored(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            if x < 10:
                if x >= 10:  # infeasible given the outer branch
                    raise AssertionError("unreachable")

        result = ExhaustiveSymbolicEngine().explore(body)
        # Paths: x < 10 (inner forced false), x >= 10. No crash.
        assert result.stats.paths == 2
        assert result.crash_free

    def test_constraints_accumulate_in_pc(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            if x < 10:
                pass

        result = ExhaustiveSymbolicEngine().explore(body)
        for path in result.tree.paths:
            assert len(path.pc) == 1

    def test_witness_satisfies_path(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            if x == 1234:
                pass

        result = ExhaustiveSymbolicEngine().explore(body)
        witnesses = sorted(path.witness.get("x") for path in result.tree.paths)
        assert 1234 in witnesses

    def test_path_budget_enforced(self):
        def body(ctx):
            for i in range(20):
                x = ctx.fresh(f"x{i}", 8)
                if x == 0:
                    pass

        with pytest.raises(RuntimeError, match="path explosion"):
            ExhaustiveSymbolicEngine(max_paths=100).explore(body)


class TestCrashDetection:
    def test_crash_recorded_not_raised(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            if x == 9:
                raise ZeroDivisionError("synthetic bug")

        result = ExhaustiveSymbolicEngine().explore(body)
        assert not result.crash_free
        crashed = result.tree.crashed_paths()
        assert len(crashed) == 1
        assert "ZeroDivisionError" in crashed[0].crashed

    def test_other_paths_survive_a_crash(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            if x == 9:
                raise RuntimeError("boom")

        result = ExhaustiveSymbolicEngine().explore(body)
        assert result.stats.paths == 2


class TestLowLevelChecks:
    def test_overflow_detected(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            _ = x + 1  # can wrap past 0xFFFF

        result = ExhaustiveSymbolicEngine().explore(body)
        assert not result.all_checks_proven

    def test_guarded_arithmetic_proven(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            if x < 1000:
                _ = x + 1  # cannot wrap under the guard

        result = ExhaustiveSymbolicEngine().explore(body)
        guarded = [p for p in result.tree.paths if len(p.pc) >= 1]
        for path in result.tree.paths:
            for check in path.checks:
                if path.pc and "x+1" in str(check.property):
                    assert check.proven
        assert guarded

    def test_underflow_detected(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            _ = x - 1  # wraps when x == 0

        result = ExhaustiveSymbolicEngine().explore(body)
        assert not result.all_checks_proven

    def test_index_bounds_check(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            ctx.check_index(x, capacity=100, structure="toy")

        result = ExhaustiveSymbolicEngine().explore(body)
        violations = result.tree.violations()
        assert violations and violations[0][1].kind == "index-bounds"

    def test_counterexample_produced(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            _ = x + 1

        result = ExhaustiveSymbolicEngine().explore(body)
        violation = result.tree.violations()[0][1]
        assert violation.counterexample == {"x": 0xFFFF}

    def test_checks_can_be_disabled(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            _ = x + 1

        result = ExhaustiveSymbolicEngine(check_arithmetic=False).explore(body)
        assert result.all_checks_proven


class TestTraceTree:
    def test_trace_count_includes_prefixes(self):
        def body(ctx):
            x = ctx.fresh("x", 16)
            if x == 0:
                pass
            y = ctx.fresh("y", 16)
            if y == 0:
                pass

        result = ExhaustiveSymbolicEngine().explore(body)
        assert result.stats.paths == 4
        # Decision prefixes: (), (T), (F), (TT), (TF), (FT), (FF) = 7.
        assert result.tree.trace_count() == 7

    def test_render_mentions_constraints(self):
        def body(ctx):
            x = ctx.fresh("port", 16)
            if x == 9:
                pass

        result = ExhaustiveSymbolicEngine().explore(body)
        text = result.tree.paths[0].render()
        assert "--- constraints ---" in text
        assert "port" in text
