"""The full Vigor pipeline on VigNat — and on deliberately broken NATs.

The positive test is the paper's headline: the stateless NAT logic, the
very function the deployed NAT runs, passes exhaustive symbolic
execution and the lazy-proof validation of P1-P5.

The mutation tests are the reproduction's soundness check on the
*verifier*: each classic NAT bug, injected into the stateless logic,
must be caught by the specific sub-proof that owns that bug class.
"""

import pytest

from repro.nat.config import NatConfig
from repro.packets.headers import ETHERTYPE_IPV4, PROTO_TCP, PROTO_UDP
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env import SymbolicNatEnv, vignat_symbolic_body
from repro.verif.semantics import NatSemantics
from repro.verif.validator import Validator

CFG = NatConfig()


def validate(body, cfg=CFG):
    result = ExhaustiveSymbolicEngine().explore(body)
    return result, Validator(NatSemantics(cfg)).validate(result, "nf")


class TestVigNatVerifies:
    @pytest.fixture(scope="class")
    def outcome(self):
        return validate(vignat_symbolic_body(CFG))

    def test_all_properties_proven(self, outcome):
        _, report = outcome
        assert report.verified, report.render()

    def test_exploration_is_exhaustive_and_fast(self, outcome):
        result, _ = outcome
        assert result.stats.paths >= 12
        assert result.stats.wall_seconds < 60  # paper: <1 minute

    def test_trace_accounting(self, outcome):
        result, report = outcome
        assert report.traces > report.paths  # prefixes counted (431 vs 108)

    def test_every_path_crash_free(self, outcome):
        result, _ = outcome
        assert result.crash_free

    def test_obligation_volume(self, outcome):
        _, report = outcome
        assert report.p1.obligations >= 30
        assert report.p4.obligations >= 10
        assert report.p5.obligations >= 20


def _receive_flow_packet(env):
    """Shared mutation-test prelude: expire, receive, header checks."""
    now = env.current_time()
    if now >= CFG.expiration_time:
        min_time = now - CFG.expiration_time + 1
    else:
        min_time = 0
    env.expire_flows(min_time)
    packet = env.receive()
    if packet is None:
        return None, now
    if packet.ethertype != ETHERTYPE_IPV4:
        env.drop(packet)
        return None, now
    if (packet.protocol == PROTO_TCP) | (packet.protocol == PROTO_UDP):
        pass
    else:
        env.drop(packet)
        return None, now
    return packet, now


class TestMutationsAreCaught:
    def test_forwarding_unsolicited_fails_p1(self):
        """Skip the membership check on the external path."""

        def body(ctx):
            env = SymbolicNatEnv(ctx, CFG)
            packet, now = _receive_flow_packet(env)
            if packet is None:
                return
            if packet.device == CFG.external_device:
                index = env.flow_table_get_external(packet)
                if index is None:
                    # BUG: forward it anyway, unrewritten.
                    env.emit(
                        packet,
                        device=CFG.internal_device,
                        src_ip=packet.src_ip,
                        src_port=packet.src_port,
                        dst_ip=packet.dst_ip,
                        dst_port=packet.dst_port,
                    )
                    return
                env.flow_table_rejuvenate(index, now)
                ip, port = env.flow_internal_endpoint(index)
                env.emit(packet, CFG.internal_device, packet.src_ip,
                         packet.src_port, ip, port)
            else:
                env.drop(packet)

        _, report = validate(body)
        assert not report.p1.proven
        assert any("forward-justified" in f for f in report.p1.failures)

    def test_wrong_source_rewrite_fails_p1(self):
        """Forget to substitute the external IP on the outbound path."""

        def body(ctx):
            env = SymbolicNatEnv(ctx, CFG)
            packet, now = _receive_flow_packet(env)
            if packet is None:
                return
            if packet.device == CFG.internal_device:
                index = env.flow_table_get_internal(packet)
                if index is None:
                    index = env.flow_table_create(packet, now)
                    if index is None:
                        env.drop(packet)
                        return
                else:
                    env.flow_table_rejuvenate(index, now)
                port = env.flow_external_port(index)
                env.emit(
                    packet,
                    device=CFG.external_device,
                    src_ip=packet.src_ip,  # BUG: leaks the internal IP
                    src_port=port,
                    dst_ip=packet.dst_ip,
                    dst_port=packet.dst_port,
                )
            else:
                env.drop(packet)

        _, report = validate(body)
        assert not report.p1.proven

    def test_creating_state_for_external_fails_p1(self):
        """The security property: external packets must not create flows."""

        def body(ctx):
            env = SymbolicNatEnv(ctx, CFG)
            packet, now = _receive_flow_packet(env)
            if packet is None:
                return
            if packet.device == CFG.external_device:
                index = env.flow_table_get_external(packet)
                if index is None:
                    # BUG: full-cone behaviour — allocate state for
                    # unsolicited external traffic.
                    index = env.flow_table_create(packet, now)
                    if index is None:
                        env.drop(packet)
                        return
                else:
                    env.flow_table_rejuvenate(index, now)
                ip, port = env.flow_internal_endpoint(index)
                env.emit(packet, CFG.internal_device, packet.src_ip,
                         packet.src_port, ip, port)
            else:
                env.drop(packet)

        _, report = validate(body)
        assert not report.p1.proven
        assert any("create-only-internal" in f for f in report.p1.failures)

    def test_skipping_rejuvenation_fails_p1(self):
        """Matched flows must have their timestamps refreshed."""

        def body(ctx):
            env = SymbolicNatEnv(ctx, CFG)
            packet, now = _receive_flow_packet(env)
            if packet is None:
                return
            if packet.device == CFG.internal_device:
                index = env.flow_table_get_internal(packet)
                if index is None:
                    env.drop(packet)
                    return
                # BUG: no rejuvenate — long flows expire under traffic.
                port = env.flow_external_port(index)
                env.emit(packet, CFG.external_device, CFG.external_ip,
                         port, packet.dst_ip, packet.dst_port)
            else:
                env.drop(packet)

        _, report = validate(body)
        assert not report.p1.proven
        assert any("match-implies-refresh" in f for f in report.p1.failures)

    def test_out_of_bounds_index_fails_p4(self):
        """Pass a derived index the contract cannot bound."""

        def body(ctx):
            env = SymbolicNatEnv(ctx, CFG)
            packet, now = _receive_flow_packet(env)
            if packet is None:
                return
            if packet.device == CFG.internal_device:
                index = env.flow_table_get_internal(packet)
                if index is None:
                    env.drop(packet)
                    return
                env.flow_table_rejuvenate(index + 1, now)  # BUG: off by one
                port = env.flow_external_port(index)
                env.emit(packet, CFG.external_device, CFG.external_ip,
                         port, packet.dst_ip, packet.dst_port)
            else:
                env.drop(packet)

        _, report = validate(body)
        assert not report.p4.proven
        assert any("dchain_rejuvenate_index" in f for f in report.p4.failures)

    def test_unguarded_time_subtraction_fails_p2(self):
        """Dropping the underflow guard breaks the low-level proof."""

        def body(ctx):
            env = SymbolicNatEnv(ctx, CFG)
            now = env.current_time()
            # BUG: unsigned underflow when now < Texp - 1.
            env.expire_flows(now - CFG.expiration_time + 1)
            packet = env.receive()
            if packet is not None:
                env.drop(packet)

        _, report = validate(body)
        assert not report.p2.proven
        assert any("arith-bounds" in f for f in report.p2.failures)

    def test_crash_on_crafted_input_fails_p2(self):
        """A data-dependent crash is found by exhaustive exploration."""

        def body(ctx):
            env = SymbolicNatEnv(ctx, CFG)
            packet, _now = _receive_flow_packet(env)
            if packet is None:
                return
            if packet.src_port == 31337:
                raise ZeroDivisionError("crafted packet of death")
            env.drop(packet)

        result, report = validate(body)
        assert not result.crash_free
        assert not report.p2.proven
        assert any("crashed" in f for f in report.p2.failures)
